"""Best-serial reference algorithms and their operation counts.

These are the comparators for the paper's optimality claim: "the
processor-time product is no more than a constant factor higher than the
running time of the best serial algorithm."  Each function returns both the
result (the correctness oracle for the parallel implementations) and the
number of arithmetic operations a serial machine would execute, so the
optimality audit can form processor-time-product ratios in the same time
units the simulator charges (``ops × t_a``).

Implementations are deliberately textbook (no LAPACK blocking): the paper's
serial baseline is the straightforward algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from ..errors import ConfigError, ShapeError


@dataclass(frozen=True)
class SerialResult:
    """A serial run: the value plus the arithmetic operation count."""

    value: np.ndarray
    ops: int


def matvec(A: np.ndarray, x: np.ndarray) -> SerialResult:
    """``A @ x`` with the 2·R·C-flop inner-product count."""
    A = np.asarray(A)
    x = np.asarray(x)
    R, C = A.shape
    if x.shape != (C,):
        raise ShapeError(f"shape mismatch: {A.shape} @ {x.shape}")
    return SerialResult(A @ x, ops=2 * R * C)


def vecmat(x: np.ndarray, A: np.ndarray) -> SerialResult:
    """``x @ A`` (the paper's vector-matrix multiply)."""
    A = np.asarray(A)
    x = np.asarray(x)
    R, C = A.shape
    if x.shape != (R,):
        raise ShapeError(f"shape mismatch: {x.shape} @ {A.shape}")
    return SerialResult(x @ A, ops=2 * R * C)


def reduce_ops(R: int, C: int) -> int:
    """Serial op count of reducing an R×C matrix along either axis."""
    return max(R * C - min(R, C), 0)


def gaussian_solve(
    A: np.ndarray, b: np.ndarray, tol: float = 1e-12
) -> SerialResult:
    """Solve ``A x = b`` by Gaussian elimination with partial pivoting.

    Counts the classic ``(2/3)n^3 + O(n^2)`` arithmetic operations
    explicitly (one count per multiply/add/divide performed).
    """
    A = np.array(A, dtype=np.float64)
    b = np.array(b, dtype=np.float64)
    n = A.shape[0]
    if A.shape != (n, n) or b.shape != (n,):
        raise ShapeError(f"need square A and matching b, got {A.shape}, {b.shape}")
    ops = 0
    T = np.hstack([A, b[:, None]])
    for k in range(n):
        piv = k + int(np.argmax(np.abs(T[k:, k])))
        if abs(T[piv, k]) <= tol:
            raise np.linalg.LinAlgError(f"matrix is singular at step {k}")
        if piv != k:
            T[[k, piv]] = T[[piv, k]]
        ops += n - k  # pivot-search comparisons count as ops
        mults = T[k + 1 :, k] / T[k, k]
        ops += n - k - 1
        T[k + 1 :, k:] -= mults[:, None] * T[k, k:][None, :]
        ops += 2 * (n - k - 1) * (n - k + 1)
    x = np.zeros(n)
    for k in range(n - 1, -1, -1):
        x[k] = (T[k, n] - T[k, k + 1 : n] @ x[k + 1 :]) / T[k, k]
        ops += 2 * (n - k - 1) + 2
    return SerialResult(x, ops=ops)


def simplex_solve(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    tol: float = 1e-9,
    max_iters: Optional[int] = None,
) -> Tuple[str, float, np.ndarray, int, int]:
    """Serial dense tableau simplex for ``max c·x  s.t. A x <= b, x >= 0``.

    Requires ``b >= 0`` (slack basis feasible).  Returns
    ``(status, objective, x, iterations, ops)`` with status in
    ``{'optimal', 'unbounded', 'iteration_limit'}``.  Dantzig entering rule,
    smallest-ratio leaving rule with smallest-index tie-break — the same
    rules as the distributed implementation, so iterates match exactly.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    m, n = A.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ShapeError("shape mismatch")
    if np.any(b < 0):
        raise ConfigError("serial reference requires b >= 0")
    if max_iters is None:
        max_iters = 50 * (m + n)

    # tableau: m constraint rows + objective row; n vars + m slacks + rhs
    T = np.zeros((m + 1, n + m + 1))
    T[:m, :n] = A
    T[:m, n : n + m] = np.eye(m)
    T[:m, -1] = b
    T[m, :n] = -c
    basis = list(range(n, n + m))
    ops = 0
    width = n + m + 1

    for it in range(max_iters):
        ops += n + m  # scan the objective row
        j = int(np.argmin(T[m, : n + m]))
        if T[m, j] >= -tol:
            x = np.zeros(n + m)
            x[basis] = T[:m, -1]
            obj = float(T[m, -1])
            return "optimal", obj, x[:n], it, ops
        col = T[:m, j]
        ops += m
        pos = col > tol
        if not np.any(pos):
            return "unbounded", np.inf, np.zeros(n), it, ops
        ratios = np.where(pos, T[:m, -1] / np.where(pos, col, 1.0), np.inf)
        ops += m
        r = int(np.argmin(ratios))
        # pivot
        T[r] = T[r] / T[r, j]
        ops += width
        rows = np.arange(m + 1) != r
        T[rows] -= np.outer(T[rows, j], T[r])
        ops += 2 * m * width
        basis[r] = j
    return "iteration_limit", float(T[m, -1]), np.zeros(n), max_iters, ops
