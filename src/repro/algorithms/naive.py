"""The paper's "naive implementation" baseline.

The abstract: "this implementation [the primitives] improved the running
time of some of our applications by almost an order of magnitude over a
naive implementation".  The naive implementation is what a direct
element-per-virtual-processor port produces: whenever data must cross the
processor grid it is moved *one band at a time* through the router —
reductions gather partials to a leader band serially and combine there,
broadcasts send the data to each destination band in turn — instead of the
primitives' ``lg``-round subcube tree collectives.

:class:`NaiveMatrix` / :class:`NaiveVector` subclass the primitive-based
array classes and override exactly the operations whose communication
differs; all local arithmetic, embeddings and the application algorithm
text are shared, so any measured gap is attributable to the primitives.

Cost model of one naive transfer: each band-to-band send is one router
operation charged as a full communication round (start-up + volume), so a
``2**k``-band reduce costs ``2**k - 1`` serial rounds against the tree's
``k`` — the gap the paper reports grows with machine size, reaching an
order of magnitude at CM scale.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..comm.ops import CombineOp, get_op
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from ..core import primitives
from ..core.arrays import DistributedMatrix, DistributedVector
from ..embeddings.gray import deposit_bits
from ..embeddings.vector import _AlignedEmbedding
from ..errors import EmbeddingError

INT64_MAX = np.iinfo(np.int64).max


# ---------------------------------------------------------------------------
# serialised band communication helpers
# ---------------------------------------------------------------------------

def _dims_mask(dims: Sequence[int]) -> int:
    mask = 0
    for d in dims:
        mask |= 1 << d
    return mask


def _charge_serial(machine: Hypercube, volume: float, dims: Sequence[int]) -> int:
    """Charge ``2**k - 1`` sequential router rounds of ``volume`` each."""
    sends = (1 << len(dims)) - 1
    if sends > 0:
        machine.charge_comm_round(volume, rounds=sends)
    return sends


def _group_reduce(
    machine: Hypercube, data: np.ndarray, dims: Sequence[int], op: CombineOp
) -> np.ndarray:
    """Functionally combine ``data`` over every dims-subcube (no charging)."""
    if not dims:
        return data
    mask = _dims_mask(dims)
    keys = machine.pids() & ~mask
    order = np.argsort(keys, kind="stable")
    gsize = 1 << len(dims)
    grouped = data[order].reshape(machine.p // gsize, gsize, *data.shape[1:])
    red = op.ufunc.reduce(grouped, axis=1)
    out = np.empty_like(data)
    out[order] = np.repeat(red, gsize, axis=0)
    return out


def _group_arg(
    machine: Hypercube,
    val: np.ndarray,
    idx: np.ndarray,
    dims: Sequence[int],
    mode: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Functional subcube arg-combine with smallest-index tie-break."""
    if not dims:
        return val, idx
    mask = _dims_mask(dims)
    keys = machine.pids() & ~mask
    order = np.argsort(keys, kind="stable")
    gsize = 1 << len(dims)
    v = val[order].reshape(machine.p // gsize, gsize, *val.shape[1:])
    i = idx[order].reshape(machine.p // gsize, gsize, *idx.shape[1:])
    best = v.max(axis=1) if mode == "max" else v.min(axis=1)
    ties = v == np.expand_dims(best, 1)
    best_i = np.where(ties, i, INT64_MAX).min(axis=1)
    out_v = np.empty_like(val)
    out_i = np.empty_like(idx)
    out_v[order] = np.repeat(best, gsize, axis=0)
    out_i[order] = np.repeat(best_i, gsize, axis=0)
    return out_v, out_i


def _replicate_from_band(
    machine: Hypercube,
    data: np.ndarray,
    dims: Sequence[int],
    band_code: int,
) -> np.ndarray:
    """Functional copy of the band with node code ``band_code`` to its
    whole subcube."""
    if not dims:
        return data
    mask = _dims_mask(dims)
    src = (machine.pids() & ~mask) | deposit_bits(band_code, tuple(dims))
    return data[src]


# ---------------------------------------------------------------------------
# arrays
# ---------------------------------------------------------------------------

class NaiveVector(DistributedVector):
    """A vector whose global operations use serialised communication."""

    def reduce(self, op: Union[CombineOp, str] = "sum") -> float:
        op = get_op(op)
        machine = self.machine
        mask = self.embedding.valid_mask()
        data = self.pvar.data
        if not mask.all():
            data = np.where(mask, data, op.identity(self.dtype))
            machine.charge_local(self.pvar.local_size)
        local = op.ufunc.reduce(data, axis=1)
        machine.charge_flops(max(self.pvar.local_size - 1, 0))
        dims = self._reduce_dims()
        sends = _charge_serial(machine, 1.0, dims)
        machine.charge_flops(float(sends))  # leader combines serially
        total = _group_reduce(machine, local, dims, op)
        pid = self.embedding.owner_slot_scalar(0)[0]
        return machine.read_scalar(PVar(machine, total), pid=pid)

    def argreduce(
        self, mode: str = "max", valid: Optional[DistributedVector] = None
    ) -> Tuple[float, int]:
        machine = self.machine
        op = get_op("max" if mode == "max" else "min")
        mask = self.embedding.valid_mask()
        if valid is not None:
            if not self.embedding.compatible(valid.embedding):
                raise EmbeddingError("valid mask must share the vector's embedding")
            mask = mask & valid.pvar.data.astype(bool)
            machine.charge_flops(self.pvar.local_size)
        ident = op.identity(self.dtype)
        data = np.where(mask, self.pvar.data, ident)
        machine.charge_local(self.pvar.local_size)
        gidx = np.where(mask, self.embedding.global_indices(), INT64_MAX)
        best_val = data.max(axis=1) if mode == "max" else data.min(axis=1)
        machine.charge_flops(self.pvar.local_size)
        extreme = data == best_val[:, None]
        best_idx = np.where(extreme, gidx, INT64_MAX).min(axis=1)
        machine.charge_flops(self.pvar.local_size)
        best_idx = np.where(best_val == ident, INT64_MAX, best_idx)

        dims = self._reduce_dims()
        sends = _charge_serial(machine, 2.0, dims)  # (value, index) pairs
        machine.charge_flops(3.0 * sends)           # serial compare chain
        v, i = _group_arg(machine, best_val, best_idx, dims, mode)
        pid = self.embedding.owner_slot_scalar(0)[0]
        value = machine.read_scalar(PVar(machine, v), pid=pid)
        index = int(machine.read_scalar(PVar(machine, i), pid=pid))
        if index == INT64_MAX:
            index = -1
        return value, index

    def distribute(self, like: DistributedMatrix, axis: int) -> DistributedMatrix:
        vec = self._naively_replicated(like, axis)
        return DistributedVector.distribute(vec, like, axis)

    def _naively_replicated(
        self, like: DistributedMatrix, axis: int
    ) -> "NaiveVector":
        """Bring this vector to the replicated aligned embedding without
        tree broadcasts: remap to a resident band if needed, then send the
        band's copy to every other band one at a time."""
        machine = self.machine
        target_resident = primitives._aligned_embedding(
            like.embedding, axis, resident=0
        )
        emb = self.embedding
        if isinstance(emb, _AlignedEmbedding) and emb.compatible(
            target_resident.with_resident(None)
        ):
            return self  # already replicated
        if not (
            isinstance(emb, type(target_resident))
            and not emb.replicated
            and emb.matrix.same_grid(like.embedding)
        ):
            remapped = self.as_embedding(target_resident)
            emb = remapped.embedding
            vec_pv = remapped.pvar
        else:
            vec_pv = self.pvar
        resident = emb.resident  # type: ignore[attr-defined]
        dims = emb.across_dims  # type: ignore[attr-defined]
        _charge_serial(machine, vec_pv.local_size, dims)
        data = _replicate_from_band(
            machine, vec_pv.data, dims, emb.across_code(resident)
        )
        new_emb = emb.with_resident(None)  # type: ignore[attr-defined]
        return NaiveVector(PVar(machine, data), new_emb)


class NaiveMatrix(DistributedMatrix):
    """A matrix whose primitives use serialised communication.

    Only ``extract``'s replication, ``reduce`` and ``argreduce`` differ
    from :class:`DistributedMatrix`; local arithmetic, ``insert`` (a masked
    local write) and the embeddings are inherited unchanged.
    """

    _vector_cls = NaiveVector

    def extract(
        self, axis: int, index: int, replicate: bool = True
    ) -> NaiveVector:
        pv, emb = primitives.extract(
            self.pvar, self.embedding, axis, index, replicate=False
        )
        if replicate:
            machine = self.machine
            resident = emb.resident  # type: ignore[attr-defined]
            dims = emb.across_dims  # type: ignore[attr-defined]
            _charge_serial(machine, pv.local_size, dims)
            data = _replicate_from_band(
                machine, pv.data, dims, emb.across_code(resident)
            )
            pv = PVar(machine, data)
            emb = emb.with_resident(None)  # type: ignore[attr-defined]
        return NaiveVector(pv, emb)

    def reduce(
        self, axis: int, op: Union[CombineOp, str] = "sum"
    ) -> NaiveVector:
        op = get_op(op)
        machine = self.machine
        partial, dims, vec_emb = primitives.local_reduce(
            self.pvar, self.embedding, axis, op
        )
        volume = float(partial.local_size)
        sends = _charge_serial(machine, volume, dims)      # gather to leader
        machine.charge_flops(volume * sends)               # serial combining
        _charge_serial(machine, volume, dims)              # send results back
        data = _group_reduce(machine, partial.data, dims, op)
        return NaiveVector(PVar(machine, data), vec_emb)

    def argreduce(
        self,
        axis: int,
        mode: str = "max",
        valid: Optional[DistributedMatrix] = None,
    ) -> Tuple[NaiveVector, NaiveVector]:
        machine = self.machine
        valid_pv = valid.pvar if valid is not None else None
        if valid is not None and valid.embedding != self.embedding:
            raise EmbeddingError("valid mask must share the matrix embedding")
        val, idx, dims, vec_emb = primitives.local_reduce_loc(
            self.pvar, self.embedding, axis, mode=mode, valid=valid_pv
        )
        volume = 2.0 * val.local_size
        sends = _charge_serial(machine, volume, dims)
        machine.charge_flops(3.0 * val.local_size * sends)
        _charge_serial(machine, volume, dims)
        v, i = _group_arg(machine, val.data, idx.data, dims, mode)
        i = np.where(i == INT64_MAX, -1, i)
        return (
            NaiveVector(PVar(machine, v), vec_emb),
            NaiveVector(PVar(machine, i), vec_emb),
        )
