"""Bitonic sort on the Boolean cube.

Johnsson's "Combining Parallel and Sequential Sorting on a Boolean n-cube"
(in the same TMC/Caltech line as the paper) is the blueprint: sort the
``L = N/p`` local block sequentially, then run the block-level bitonic
network over the processors with each compare-exchange replaced by a
*merge-split* — neighbours exchange whole blocks, merge, and keep the low
or high half.  ``lg p (lg p + 1)/2`` exchange rounds of one block each,
plus ``O(L lg L + L lg^2 p)`` local work: the ``O((N/p) lg N)``-per-stage
combination the paper's era used for data-parallel sorting.

Padding: capacities beyond the vector length ride through the network as
``+inf`` sentinels and are stripped by a final balanced remap, so any
length works on any machine size.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from ..machine.router import Router
from ..core.arrays import DistributedVector
from ..embeddings.vector import VectorOrderEmbedding
from ..errors import ConfigError, EmbeddingError


@dataclass
class SortResult:
    """The sorted vector plus simulated cost."""

    values: DistributedVector
    cost: CostSnapshot


def _merge_split(
    machine: Hypercube,
    data: np.ndarray,
    d: int,
    keep_low: np.ndarray,
) -> np.ndarray:
    """One compare-exchange step on sorted blocks.

    Each processor exchanges its block with its dimension-``d`` neighbour,
    merges the two sorted blocks, and keeps the half selected by
    ``keep_low`` (a per-processor boolean).  Blocks stay sorted.
    """
    L = data.shape[1]
    recv = machine.exchange(PVar(machine, data), d).data
    merged = np.concatenate([data, recv], axis=1)
    merged.sort(axis=1)  # merge of two sorted runs; charged as a merge
    machine.charge_flops(2 * L)  # one comparison per merged element
    out = np.where(keep_low[:, None], merged[:, :L], merged[:, L:])
    machine.charge_local(L)
    return out


def bitonic_sort(
    vector: DistributedVector,
    descending: bool = False,
) -> SortResult:
    """Sort a distributed vector into vector order.

    Requires (and returns) a block-layout vector-order embedding; the
    result uses the *same* embedding with element ``g`` of the sorted
    sequence at global slot ``g``.
    """
    emb = vector.embedding
    if not isinstance(emb, VectorOrderEmbedding):
        raise EmbeddingError("bitonic_sort requires a vector-order embedding")
    from ..embeddings.layout import BlockLayout
    if not isinstance(emb.layout, BlockLayout):
        raise EmbeddingError("bitonic_sort requires a block layout")
    machine = emb.machine
    n = machine.n
    L = emb.local_shape[0]
    # The merge-split network needs its rank bit j to flip exactly across
    # cube dimension j, so it runs on raw processor addresses regardless of
    # the embedding's (possibly Gray) rank coding; the final balanced remap
    # routes results into the embedding's own order.
    rank = machine.pids()

    start = machine.snapshot()
    with machine.phase("bitonic-sort"):
        # pad invalid slots with +inf sentinels so they sort to the end
        data = np.where(
            emb.valid_mask(), vector.pvar.data.astype(np.float64), np.inf
        )
        machine.charge_local(L)

        # local sequential sort: L lg L comparisons
        data.sort(axis=1)
        machine.charge_flops(L * max(int(np.ceil(np.log2(max(L, 2)))), 1))

        # block-level bitonic network over the processor ranks
        for i in range(n):
            for j in range(i, -1, -1):
                ascending = ((rank >> (i + 1)) & 1) == 0
                low_side = ((rank >> j) & 1) == 0
                keep_low = low_side == ascending
                data = _merge_split(machine, data, j, keep_low)

        # strip the sentinels back to the balanced block layout: the real
        # elements occupy the ascending prefix of the capacity-order
        # sequence; route each to its layout slot (reversed first for a
        # descending sort — one extra reversal permutation).
        flat = data.reshape(machine.p * L)
        real = ~np.isinf(flat)
        values_sorted = flat[real]
        assert len(values_sorted) == emb.L
        src_capacity_pid = np.nonzero(real)[0] // L
        if descending:
            values_sorted = values_sorted[::-1].copy()
            src_capacity_pid = src_capacity_pid[::-1].copy()
        dst_pid = np.asarray(emb.owner_slot(np.arange(emb.L))[0])
        moving = src_capacity_pid != dst_pid
        if np.any(moving):
            pair = (
                src_capacity_pid[moving] * machine.p + dst_pid[moving]
            )
            pairs, counts = np.unique(pair, return_counts=True)
            Router(machine).simulate(
                pairs // machine.p, pairs % machine.p,
                counts.astype(np.float64),
            )
        machine.charge_local(L)
        out = emb.scatter(values_sorted)

    result = DistributedVector(out, emb)
    return SortResult(values=result, cost=machine.elapsed_since(start))


def is_sorted(vector: DistributedVector, descending: bool = False) -> bool:
    """Distributed sortedness check (diagnostic; host-side compare)."""
    host = vector.to_numpy()
    if descending:
        return bool(np.all(host[:-1] >= host[1:]))
    return bool(np.all(host[:-1] <= host[1:]))


def sample_sort(
    vector: DistributedVector,
    oversample: int = 8,
) -> SortResult:
    """Sample (bucket) sort: the third algorithm of Johnsson's sorting
    paper — "a parallel bucket sort that sorts the elements into L buckets".

    1. every processor sorts locally and contributes ``oversample``
       evenly-spaced samples, gathered (tree) and sorted to pick ``p - 1``
       splitters, which are broadcast back;
    2. each processor partitions its sorted block against the splitters
       (a binary-search pass) and ships bucket ``q`` to processor ``q``
       through the router — one irregular h-relation instead of the
       bitonic network's ``lg p (lg p + 1)/2`` full-block rounds;
    3. each processor merges its received runs locally.

    For large blocks (``N/p`` well above ``p``'s logarithm) the single
    h-relation beats the bitonic network's repeated full-block exchanges;
    on very large machines the *replicated* splitter sort — every
    processor sorts the ``p·oversample`` pooled sample, charged honestly
    as serial work — flips the advantage back to bitonic.  This matches
    the original paper's framing: the bucket sort is the ``M >> N``
    (many elements per processor) algorithm.  Skew costs are honest too:
    an unlucky splitter draw produces an uneven h-relation and the router
    charges the congestion.
    """
    emb = vector.embedding
    if not isinstance(emb, VectorOrderEmbedding):
        raise EmbeddingError("sample_sort requires a vector-order embedding")
    from ..embeddings.layout import BlockLayout
    if not isinstance(emb.layout, BlockLayout):
        raise EmbeddingError("sample_sort requires a block layout")
    if oversample < 1:
        raise ConfigError("oversample must be >= 1")
    machine = emb.machine
    p = machine.p
    L = emb.local_shape[0]

    start = machine.snapshot()
    with machine.phase("sample-sort"):
        data = np.where(
            emb.valid_mask(), vector.pvar.data.astype(np.float64), np.inf
        )
        machine.charge_local(L)
        data.sort(axis=1)
        machine.charge_flops(L * max(int(np.ceil(np.log2(max(L, 2)))), 1))

        if p > 1:
            # --- splitters: sample, gather, sort, broadcast ---------------
            k = min(oversample, L)
            # interior quantiles of the sorted block: including block
            # minima/maxima would weight the pooled sample toward the
            # distribution tails and wreck the splitters
            pick = ((np.arange(k) + 1) * L) // (k + 1)
            samples = data[:, np.minimum(pick, L - 1)]   # (p, k) local picks
            machine.charge_local(k)
            from .. import comm
            gathered = comm.allgather(machine, PVar(machine, samples))
            # every processor sorts the sample set itself (replicated work)
            flat = np.sort(gathered.data.reshape(p, p * k), axis=1)
            machine.charge_flops(
                p * k * max(int(np.ceil(np.log2(max(p * k, 2)))), 1)
            )
            finite_counts = np.isfinite(flat).sum(axis=1)
            # p-1 evenly spaced splitters from the finite samples
            splitters = np.empty((p, p - 1))
            for q in range(p):  # identical on every processor (SIMD)
                fc = max(int(finite_counts[q]), 1)
                idx = (np.arange(1, p) * fc) // p
                splitters[q] = flat[q, np.minimum(idx, fc - 1)]
            machine.charge_local(p - 1)

            # --- partition and route the buckets ---------------------------
            spl = splitters[0]
            # each processor partitions its own block (same splitters)
            buckets = np.searchsorted(spl, data.reshape(-1), side="right")
            buckets = buckets.reshape(p, L)
            buckets = np.where(np.isinf(data), p - 1, buckets)  # park padding
            machine.charge_flops(
                L * max(int(np.ceil(np.log2(max(p, 2)))), 1)
            )
            srcs, dsts, sizes = [], [], []
            for src in range(p):
                dst_ids, counts = np.unique(buckets[src], return_counts=True)
                for dq, cnt in zip(dst_ids, counts):
                    if dq != src:
                        srcs.append(src)
                        dsts.append(int(dq))
                        sizes.append(float(cnt))
            if srcs:
                Router(machine).simulate(
                    np.array(srcs), np.array(dsts),
                    np.array(sizes, dtype=np.float64),
                )
            machine.charge_local(L)  # pack/unpack the buckets

            # functional: regroup values by destination bucket
            flat_vals = data.reshape(-1)
            flat_bkt = buckets.reshape(-1)
            received = [flat_vals[flat_bkt == q] for q in range(p)]
            # --- local merge of the received runs --------------------------
            max_recv = max(len(r) for r in received)
            merged = np.full((p, max_recv), np.inf)
            for q in range(p):
                merged[q, : len(received[q])] = np.sort(received[q])
            machine.charge_flops(
                max_recv * max(int(np.ceil(np.log2(max(max_recv, 2)))), 1)
            )
            flat_sorted = merged.reshape(-1)
            flat_sorted = flat_sorted[~np.isinf(flat_sorted)]
        else:
            flat_sorted = data.reshape(-1)
            flat_sorted = flat_sorted[~np.isinf(flat_sorted)]

        assert len(flat_sorted) == emb.L
        out = emb.scatter(flat_sorted)
        machine.charge_local(L)
    return SortResult(
        values=DistributedVector(out, emb),
        cost=machine.elapsed_since(start),
    )
