"""The paper's three applications, baselines, and the extension family.

The paper's evaluation targets:

* :mod:`~repro.algorithms.matvec` — vector-matrix multiply (application 1);
* :mod:`~repro.algorithms.gaussian` — Gaussian elimination with partial /
  implicit / no pivoting, multi-RHS solves, inversion, determinants,
  Gauss-Jordan (application 2);
* :mod:`~repro.algorithms.simplex` — two-phase dense simplex with duals
  (application 3);
* :mod:`~repro.algorithms.naive` — the paper's "naive implementation"
  baseline (serialised communication, same algorithm text);
* :mod:`~repro.algorithms.serial` — best-serial references with operation
  counts for the optimality audit.

Extensions from the same TMC report family, on the same machinery:

* :mod:`~repro.algorithms.triangular` — triangular sweeps and replayable LU;
* :mod:`~repro.algorithms.qr` — Householder QR and least squares;
* :mod:`~repro.algorithms.iterative` — (preconditioned) CG, GMRES,
  Jacobi, power method;
* :mod:`~repro.algorithms.fft` — distributed radix-2 FFT and convolution;
* :mod:`~repro.algorithms.sort` — combined sequential/bitonic cube sort;
* :mod:`~repro.algorithms.histogram` — dense vs sparse all-to-all histograms;
* :mod:`~repro.algorithms.tridiagonal` — substructuring + parallel cyclic
  reduction (the Johnsson-Ho ADI substrate);
* :mod:`~repro.algorithms.graph` — BFS / SSSP / connected components on
  the semiring sparse primitives (loaded lazily: it pulls in
  :mod:`repro.sparse`, which dense runs must never import).
"""

from . import (
    fft,
    gaussian,
    histogram,
    iterative,
    matvec,
    naive,
    qr,
    serial,
    simplex,
    sort,
    triangular,
    tridiagonal,
)
from .gaussian import GaussianResult, SingularMatrixError
from .iterative import IterativeResult
from .matvec import MatvecResult
from .naive import NaiveMatrix, NaiveVector
from .qr import QRFactorization
from .simplex import SimplexResult
from .triangular import LUFactorization


def __getattr__(name: str):
    # ``graph`` loads the sparse subsystem, so it is resolved on first
    # access instead of at package import (dense runs stay sparse-free).
    if name == "graph":
        import importlib

        return importlib.import_module(".graph", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "graph",
    "fft",
    "gaussian",
    "histogram",
    "iterative",
    "matvec",
    "naive",
    "qr",
    "serial",
    "simplex",
    "sort",
    "triangular",
    "tridiagonal",
    "GaussianResult",
    "SingularMatrixError",
    "IterativeResult",
    "MatvecResult",
    "NaiveMatrix",
    "NaiveVector",
    "QRFactorization",
    "SimplexResult",
    "LUFactorization",
]
