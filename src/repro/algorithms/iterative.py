"""Iterative solvers built from the primitives.

The Connection Machine numerical library of the paper's era leaned heavily
on iterative methods (the finite-element reports in the same TMC series
solve their systems with diagonally preconditioned conjugate gradients).
Each iteration here is a handful of primitive applications — a matvec
(distribute · multiply · reduce), dot products (elementwise + reduce) and
axpy updates (elementwise) — so they exercise exactly the composition
pattern the paper advocates, and their per-iteration cost is
``O(m/p + lg p)`` like the primitives themselves.

All solvers accept any :class:`~repro.core.arrays.DistributedMatrix`
subclass (the naive baseline runs unchanged) and report per-iteration
residual histories plus simulated cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, DistributedVector
from ..embeddings.vector import RowAlignedEmbedding
from ..errors import ConfigError, ShapeError


@dataclass
class IterativeResult:
    """Solution, convergence history and simulated cost."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: List[float] = field(default_factory=list)
    cost: Optional[CostSnapshot] = None


def _as_row_aligned(
    A: DistributedMatrix, v: np.ndarray
) -> DistributedVector:
    emb = RowAlignedEmbedding(A.embedding, None)
    return type(A)._vector_cls(emb.scatter(np.asarray(v, dtype=np.float64)), emb)


def _jacobi_preconditioner(A: DistributedMatrix, row_emb):
    """``D^{-1}`` as an aligned vector (one masked reduce + reciprocal)."""
    from ..machine.pvar import PVar
    machine = A.machine
    diag = A.diagonal()
    d_host = diag.to_numpy()
    if np.any(np.abs(d_host) < 1e-300):
        raise np.linalg.LinAlgError(
            "zero diagonal entry; Jacobi preconditioner undefined"
        )
    safe = np.where(row_emb.valid_mask(), diag.pvar.data, 1.0)
    machine.charge_flops(diag.pvar.local_size)
    return type(diag)(PVar(machine, 1.0 / safe), row_emb)


def conjugate_gradient(
    A: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iters: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[str] = None,
) -> IterativeResult:
    """Conjugate gradients for symmetric positive-definite ``A``.

    Per iteration: one matvec, two dot products, three axpys — one
    ``lg p``-round reduce dominates the communication, the ``O(m/p)``
    multiply the arithmetic.  Converges in at most ``n`` steps in exact
    arithmetic; ``tol`` is on the relative residual norm.

    ``preconditioner='jacobi'`` runs the diagonally preconditioned variant
    — verbatim the method the TMC finite-element reports used ("a
    conjugate gradient method with a diagonal preconditioner"); one extra
    elementwise multiply per iteration.
    """
    if preconditioner not in (None, "jacobi"):
        raise ConfigError(
            f"preconditioner must be None or 'jacobi', got {preconditioner!r}"
        )
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    if max_iters is None:
        max_iters = 2 * n
    machine = A.machine
    row_emb = RowAlignedEmbedding(A.embedding, None)

    start = machine.snapshot()
    with machine.phase("conjugate-gradient"):
        inv_diag = (
            _jacobi_preconditioner(A, row_emb)
            if preconditioner == "jacobi" else None
        )
        x = _as_row_aligned(A, np.zeros(n) if x0 is None else x0)
        Ax = A.matvec(x).as_embedding(row_emb)
        b_vec = _as_row_aligned(A, b)
        r = b_vec - Ax
        z = r * inv_diag if inv_diag is not None else r
        p_dir = z
        rz = r.dot(z)
        b_norm = float(np.sqrt(b_vec.dot(b_vec))) or 1.0

        residuals = [float(np.sqrt(r.dot(r))) / b_norm]
        converged = residuals[-1] <= tol
        it = 0
        while not converged and it < max_iters:
            Ap = A.matvec(p_dir).as_embedding(row_emb)
            pAp = p_dir.dot(Ap)
            if pAp <= 0:
                raise np.linalg.LinAlgError(
                    "matrix is not positive definite (p^T A p <= 0)"
                )
            alpha = rz / pAp
            x = x + p_dir * alpha
            r = r - Ap * alpha
            z = r * inv_diag if inv_diag is not None else r
            rz_new = r.dot(z)
            beta = rz_new / rz
            p_dir = z + p_dir * beta
            rz = rz_new
            it += 1
            residuals.append(float(np.sqrt(r.dot(r))) / b_norm)
            converged = residuals[-1] <= tol
    return IterativeResult(
        x=x.to_numpy(),
        converged=converged,
        iterations=it,
        residuals=residuals,
        cost=machine.elapsed_since(start),
    )


def jacobi(
    A: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iters: int = 500,
    x0: Optional[np.ndarray] = None,
) -> IterativeResult:
    """Jacobi iteration: ``x' = x + D^{-1} (b - A x)``.

    Converges for (strictly) diagonally dominant systems.  The diagonal is
    pulled out with one ``reduce_loc``-style masked reduce at start-up (the
    per-row entry where column index equals row index), then every sweep is
    a matvec plus elementwise work.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    machine = A.machine
    row_emb = RowAlignedEmbedding(A.embedding, None)

    start = machine.snapshot()
    with machine.phase("jacobi"):
        from ..machine.pvar import PVar
        diag = A.diagonal()  # masked reduce; already row-aligned replicated
        d_host = diag.to_numpy()
        if np.any(np.abs(d_host) < 1e-300):
            raise np.linalg.LinAlgError("zero diagonal entry; Jacobi undefined")
        # Reciprocal with padding slots pinned to 1.0 so no spurious
        # inf/nan ever enters the local arithmetic.
        safe = np.where(row_emb.valid_mask(), diag.pvar.data, 1.0)
        machine.charge_flops(diag.pvar.local_size)
        inv_diag = type(diag)(PVar(machine, 1.0 / safe), row_emb)

        x = _as_row_aligned(A, np.zeros(n) if x0 is None else x0)
        b_vec = _as_row_aligned(A, b)
        b_norm = float(np.sqrt(b_vec.dot(b_vec))) or 1.0
        residuals: List[float] = []
        converged = False
        it = 0
        while it < max_iters:
            r = b_vec - A.matvec(x).as_embedding(row_emb)
            res = float(np.sqrt(r.dot(r))) / b_norm
            residuals.append(res)
            if res <= tol:
                converged = True
                break
            x = x + r * inv_diag
            it += 1
    return IterativeResult(
        x=x.to_numpy(),
        converged=converged,
        iterations=it,
        residuals=residuals,
        cost=machine.elapsed_since(start),
    )


def power_method(
    A: DistributedMatrix,
    tol: float = 1e-12,
    max_iters: int = 1000,
    seed: int = 0,
) -> "tuple[float, np.ndarray, IterativeResult]":
    """Dominant eigenpair by power iteration.

    Returns ``(eigenvalue, eigenvector, result)``; convergence is measured
    by the eigenvalue estimate's relative change.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    machine = A.machine
    row_emb = RowAlignedEmbedding(A.embedding, None)
    rng = np.random.default_rng(seed)

    start = machine.snapshot()
    with machine.phase("power-method"):
        x = _as_row_aligned(A, rng.standard_normal(n))
        norm = float(np.sqrt(x.dot(x)))
        x = x * (1.0 / norm)
        estimate = 0.0
        history: List[float] = []
        converged = False
        it = 0
        while it < max_iters:
            y = A.matvec(x).as_embedding(row_emb)
            new_estimate = x.dot(y)  # Rayleigh quotient
            norm = float(np.sqrt(y.dot(y)))
            if norm == 0.0:
                raise np.linalg.LinAlgError("A annihilated the iterate")
            x = y * (1.0 / norm)
            it += 1
            change = abs(new_estimate - estimate) / max(abs(new_estimate), 1e-300)
            history.append(change)
            estimate = new_estimate
            if change <= tol:
                converged = True
                break
    result = IterativeResult(
        x=x.to_numpy(),
        converged=converged,
        iterations=it,
        residuals=history,
        cost=machine.elapsed_since(start),
    )
    return float(estimate), x.to_numpy(), result


def gmres(
    A: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-10,
    restart: Optional[int] = None,
    max_iters: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
) -> IterativeResult:
    """Restarted GMRES for general (nonsymmetric) systems.

    Arnoldi with modified Gram-Schmidt built on the distributed vectors:
    per inner step one matvec plus ``j`` dot products and axpys (each dot
    a ``lg p`` reduce).  The tiny ``(j+1) × j`` Hessenberg least-squares
    problem is solved on the front end — the CM's host did exactly this
    kind of scalar bookkeeping — from reduction results that were already
    paid for.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    if restart is None:
        restart = min(n, 30)
    if restart < 1:
        raise ConfigError("restart must be >= 1")
    if max_iters is None:
        max_iters = 10 * n
    machine = A.machine
    row_emb = RowAlignedEmbedding(A.embedding, None)

    start = machine.snapshot()
    with machine.phase("gmres"):
        x = _as_row_aligned(A, np.zeros(n) if x0 is None else x0)
        b_vec = _as_row_aligned(A, b)
        b_norm = float(np.sqrt(b_vec.dot(b_vec))) or 1.0

        residuals: List[float] = []
        total_inner = 0
        converged = False
        while total_inner < max_iters and not converged:
            r = b_vec - A.matvec(x).as_embedding(row_emb)
            beta = float(np.sqrt(r.dot(r)))
            residuals.append(beta / b_norm)
            if residuals[-1] <= tol:
                converged = True
                break
            V = [r * (1.0 / beta)]
            m_dim = min(restart, max_iters - total_inner)
            H = np.zeros((m_dim + 1, m_dim))
            j_done = 0
            for j in range(m_dim):
                w = A.matvec(V[j]).as_embedding(row_emb)
                for i in range(j + 1):
                    H[i, j] = V[i].dot(w)
                    w = w - V[i] * H[i, j]
                h = float(np.sqrt(w.dot(w)))
                H[j + 1, j] = h
                j_done = j + 1
                total_inner += 1
                if h < 1e-14 * b_norm:
                    break  # lucky breakdown: exact solution in the space
                V.append(w * (1.0 / h))
            e1 = np.zeros(j_done + 1)
            e1[0] = beta
            y, *_ = np.linalg.lstsq(H[: j_done + 1, : j_done], e1, rcond=None)
            for i in range(j_done):
                x = x + V[i] * float(y[i])
        # final residual
        r = b_vec - A.matvec(x).as_embedding(row_emb)
        final = float(np.sqrt(r.dot(r))) / b_norm
        residuals.append(final)
        converged = final <= tol * 10  # allow lstsq-level slack

    return IterativeResult(
        x=x.to_numpy(),
        converged=converged,
        iterations=total_inner,
        residuals=residuals,
        cost=machine.elapsed_since(start),
    )
