"""Application 1: vector-matrix multiply (paper §applications).

The three-primitive recipe: *distribute* the vector across the matrix's
other axis, multiply elementwise, *reduce* back to a vector.  With the
vector already aligned the whole product costs one ``m/p`` local multiply
pass plus one ``lg``-round reduce — which is why this application shows the
primitives off.

These functions accept either a :class:`~repro.core.arrays.DistributedMatrix`
or the naive-baseline subclass; the algorithm text is identical, only the
primitive implementations differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, DistributedVector


@dataclass(frozen=True)
class MatvecResult:
    """Product vector plus the simulated cost of producing it."""

    y: DistributedVector
    cost: CostSnapshot


def matvec(A: DistributedMatrix, x: DistributedVector) -> MatvecResult:
    """``y = A @ x`` (x of length C, result of length R)."""
    machine = A.machine
    start = machine.snapshot()
    with machine.phase("matvec"):
        y = A.matvec(x)
    return MatvecResult(y, machine.elapsed_since(start))


def vecmat(x: DistributedVector, A: DistributedMatrix) -> MatvecResult:
    """``y = x @ A`` — the paper's vector-matrix multiply (x of length R)."""
    machine = A.machine
    start = machine.snapshot()
    with machine.phase("vecmat"):
        y = A.vecmat(x)
    return MatvecResult(y, machine.elapsed_since(start))
