"""Histogram computation on the distributed machine.

A reproduction bonus: the same TMC booklet carries "Histogram Computation
on Distributed Memory Architectures" (Gerogiannis, Orphanoudakis &
Johnsson), which compares a *data-independent* algorithm (every round
moves all ``B`` bins) against a *data-dependent* one (only non-empty bins
travel) — both built on the all-to-all reduction the primitives' reduce
uses.  We implement both with the same cost machinery:

* :func:`histogram` — local bincount, then a ``lg p``-round all-reduce of
  the full ``B``-bin array: ``lg p · (tau + B·t_c + B·t_a)``.
* :func:`histogram_sparse` — per round, each processor ships only its
  non-empty (bin, count) pairs; the round is charged by the *largest*
  per-processor transfer (SIMD rounds complete together).  With few
  elements per processor most bins are empty and the volume term drops
  toward the paper's ``O(sqrt(B))``-per-round regime; as occupancy grows
  the advantage fades — the trade-off their evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine.counters import CostSnapshot
from ..machine.pvar import PVar
from ..core.arrays import DistributedVector
from ..errors import ConfigError


@dataclass
class HistogramResult:
    """Bin counts (host-side), bin edges, and simulated cost."""

    counts: np.ndarray
    edges: np.ndarray
    cost: CostSnapshot


def _local_counts(
    vector: DistributedVector, bins: int, lo: float, hi: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-processor bincounts of the valid local elements (charged)."""
    if bins < 1:
        raise ConfigError(f"bins must be >= 1, got {bins}")
    if not hi > lo:
        raise ConfigError(f"need hi > lo, got [{lo}, {hi}]")
    machine = vector.machine
    emb = vector.embedding
    data = vector.pvar.data
    mask = emb.valid_mask()
    # binning: one multiply + floor + clip pass per element
    scaled = (data - lo) * (bins / (hi - lo))
    idx = np.clip(scaled.astype(np.int64), 0, bins - 1)
    machine.charge_flops(3 * vector.pvar.local_size)
    counts = np.zeros((machine.p, bins), dtype=np.int64)
    valid_rows, valid_cols = np.nonzero(mask)
    np.add.at(counts, (valid_rows, idx[valid_rows, valid_cols]), 1)
    # one increment per element (serial per processor over its block)
    machine.charge_flops(vector.pvar.local_size)
    edges = np.linspace(lo, hi, bins + 1)
    return counts, edges


def _range_of(vector: DistributedVector,
              value_range: Optional[Tuple[float, float]]):
    if value_range is not None:
        return float(value_range[0]), float(value_range[1])
    # a (charged) min/max reduction pair establishes the range
    lo = vector.min()
    hi = vector.max()
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def histogram(
    vector: DistributedVector,
    bins: int = 16,
    value_range: Optional[Tuple[float, float]] = None,
) -> HistogramResult:
    """Data-independent histogram: full-width all-to-all reduction."""
    machine = vector.machine
    start = machine.snapshot()
    with machine.phase("histogram"):
        lo, hi = _range_of(vector, value_range)
        counts, edges = _local_counts(vector, bins, lo, hi)
        from .. import comm
        total = comm.reduce_all(
            machine, PVar(machine, counts.astype(np.float64)), "sum"
        )
        result = total.data[0].astype(np.int64)
    return HistogramResult(result, edges, machine.elapsed_since(start))


def histogram_sparse(
    vector: DistributedVector,
    bins: int = 16,
    value_range: Optional[Tuple[float, float]] = None,
) -> HistogramResult:
    """Data-dependent histogram: only non-empty bins travel.

    Runs the same ``lg p`` exchange rounds, but each round's volume is the
    worst per-processor count of non-empty bins (two words per bin: index
    and count) instead of the full ``B`` — the data-dependent algorithm of
    the TMC histogram paper.
    """
    machine = vector.machine
    start = machine.snapshot()
    with machine.phase("histogram-sparse"):
        lo, hi = _range_of(vector, value_range)
        counts, edges = _local_counts(vector, bins, lo, hi)
        acc = counts.astype(np.float64)
        for d in range(machine.n):
            nonzero = (acc != 0).sum(axis=1)
            machine.charge_flops(bins)  # scan for the non-empty bins
            worst = float(nonzero.max()) if nonzero.size else 0.0
            machine.charge_comm_round(2.0 * worst)  # (bin, count) pairs
            recv = machine.exchange_free(PVar(machine, acc), d).data
            acc = acc + recv
            machine.charge_flops(float(worst))  # merge received pairs
        result = acc[0].astype(np.int64)
    return HistogramResult(result, edges, machine.elapsed_since(start))
