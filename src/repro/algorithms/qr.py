"""Householder QR factorisation and least squares on the primitives.

Johnsson's "A Computational Array for the QR-method" sits in the same
TMC/Caltech report line as the paper; here the Householder sweep is
expressed purely in the four primitives plus the derived products:

per step ``k`` (on the trailing ``(m-k) × (n-k)`` block):

* ``extract`` column ``k``, mask rows ``< k``;
* the reflector norm — one dot product (elementwise + ``reduce``);
* ``w = A^T v`` — one ``vecmat`` (distribute · multiply · reduce);
* ``A -= v (beta w)^T`` — one rank-1 update (zero communication).

So a step costs a constant number of ``lg p``-round collectives plus
``O(mn/p)`` local arithmetic — the same cost shape as Gaussian
elimination, with the numerical robustness of orthogonal transforms.

The factorisation is stored compactly: ``R`` in the upper triangle,
the Householder vectors below the diagonal (LAPACK-style), so
:func:`qr_solve` replays ``Q^T b`` without ever forming ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, DistributedVector, iota
from ..embeddings.vector import ColAlignedEmbedding
from .gaussian import SingularMatrixError
from .triangular import solve_upper
from ..errors import ShapeError


@dataclass
class QRFactorization:
    """Compact ``A = Q R``: R upper, Householder vectors packed below.

    ``betas[k]`` is the reflector scale (``H_k = I - beta v v^T`` with
    ``v`` having an implicit unit at position ``k``).
    """

    combined: DistributedMatrix
    betas: List[float]
    cost: Optional[CostSnapshot] = None

    @property
    def shape(self):
        return self.combined.shape

    def r(self) -> np.ndarray:
        """Host-side R (diagnostic readout)."""
        host = self.combined.to_numpy()
        return np.triu(host[: host.shape[1], :])

    def apply_qt(self, b: np.ndarray) -> np.ndarray:
        """``Q^T b`` by replaying the reflectors (distributed sweeps)."""
        mrows, ncols = self.shape
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (mrows,):
            raise ShapeError(f"b must have shape ({mrows},)")
        machine = self.combined.machine
        emb = ColAlignedEmbedding(self.combined.embedding, None)
        rhs = DistributedVector(emb.scatter(b), emb)
        row_iota = iota(emb)
        with machine.phase("apply-qt"):
            for k, beta in enumerate(self.betas):
                if beta == 0.0:
                    continue
                col = self.combined.extract(axis=1, index=k)
                below = row_iota > k
                at_k = row_iota.eq(k)
                v = below.where(col, at_k.where(1.0, 0.0))
                coef = beta * v.dot(rhs)
                rhs = rhs - v * coef
        return rhs.to_numpy()


def qr_factor(
    A: DistributedMatrix,
    tol: float = 1e-12,
) -> QRFactorization:
    """Householder QR of an ``m × n`` matrix with ``m >= n``."""
    mrows, ncols = A.shape
    if mrows < ncols:
        raise ShapeError(
            f"qr_factor needs m >= n, got {A.shape} (factor A^T instead)"
        )
    machine = A.machine
    T = type(A).from_numpy(machine, A.to_numpy())
    betas: List[float] = []
    row_iota = None
    col_iota = None

    start = machine.snapshot()
    with machine.phase("qr-factor"):
        for k in range(ncols):
            col = T.extract(axis=1, index=k)
            if row_iota is None:
                row_iota = iota(col.embedding)
            tail = row_iota >= k
            x = tail.where(col, 0.0)
            sigma2 = x.dot(x)
            alpha = float(np.sqrt(sigma2))
            x_k = col.get_global(k)
            if alpha <= tol:
                betas.append(0.0)
                continue
            # sign choice avoids cancellation
            if x_k >= 0:
                alpha = -alpha
            # v = x - alpha e_k, normalised so v[k] == 1
            v_k = x_k - alpha
            below = row_iota > k
            v = below.where(col * (1.0 / v_k), row_iota.eq(k).where(1.0, 0.0))
            beta = -v_k / alpha  # = 2 / (v^T v) for this scaling
            betas.append(float(beta))

            # w = beta * (A^T v) over the trailing columns, then the rank-1
            if col_iota is None:
                probe = T.extract(axis=0, index=0)
                col_iota = iota(probe.embedding)
            w = T.vecmat(v) * beta
            trailing = col_iota >= k
            w = trailing.where(w, 0.0)
            T = T.sub_outer(v, w, alpha=1.0)

            # store: alpha on the diagonal, v's tail below it
            new_col = below.where(v, T.extract(axis=1, index=k))
            new_col = row_iota.eq(k).where(alpha, new_col)
            T = T.insert(axis=1, index=k, vector=new_col)
    return QRFactorization(
        combined=T, betas=betas, cost=machine.elapsed_since(start)
    )


def qr_solve(
    A: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-12,
) -> np.ndarray:
    """Least-squares solution of ``A x ≈ b`` (exact for square A).

    ``Q^T b`` by reflector replay, then a backward sweep on ``R`` —
    numerically robust where the normal equations square the condition
    number.
    """
    mrows, ncols = A.shape
    fact = qr_factor(A, tol=tol)
    qtb = fact.apply_qt(np.asarray(b, dtype=np.float64))
    machine = A.machine

    # back-substitute on the leading n x n of R: reuse the upper sweep on
    # the combined matrix (it only reads the upper triangle) with the RHS
    # restricted to the first n entries.
    if any(beta == 0.0 and abs(fact.r()[k, k]) <= tol
           for k, beta in enumerate(fact.betas)):
        raise SingularMatrixError("rank-deficient matrix in qr_solve")
    if mrows == ncols:
        return solve_upper(fact.combined, qtb, tol=tol)
    # rectangular: solve the square head of R on its own embedding
    R_head = fact.r()[:ncols, :ncols]
    head = type(A).from_numpy(machine, R_head)
    return solve_upper(head, qtb[:ncols], tol=tol)
