"""Application 3: the dense tableau simplex method.

The paper's third application: a two-phase primal simplex for

    maximize    c · x
    subject to  A x <= b,   x >= 0

on a distributed ``(m + objective rows) × (n + m + artificials + 1)``
tableau.  Every step of an iteration is one of the four primitives:

* entering column — ``extract`` the objective row, arg-min over the
  eligible reduced costs (Dantzig) or smallest eligible index (Bland);
* leaving row — ``extract`` the entering column and the RHS column, a
  masked elementwise ratio, and an arg-min ``reduce``;
* pivot — ``extract`` + scale + ``insert`` the pivot row, then one rank-1
  update (``distribute`` + local arithmetic) over the whole tableau.

So an iteration costs a constant number of ``lg p``-round collectives plus
``O(m·n/p)`` local arithmetic — the naive baseline pays serialised
collectives instead, which is where the paper's order-of-magnitude gap
comes from.

Rows with ``b_i < 0`` are sign-flipped and given artificial variables;
phase I maximises minus their sum (carrying the phase II objective row in
the tableau so it stays canonical for free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

import numpy as np

from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..core.arrays import DistributedMatrix, DistributedVector, iota
from ..errors import ConfigError, ShapeError

Status = str  # 'optimal' | 'unbounded' | 'infeasible' | 'iteration_limit'


@dataclass
class SimplexResult:
    """Solution, provenance and simulated cost of one LP solve."""

    status: Status
    objective: float
    x: np.ndarray
    iterations: int
    phase1_iterations: int
    basis: List[int]
    pivots: List[Tuple[int, int]] = field(default_factory=list)
    cost: Optional[CostSnapshot] = None
    #: dual prices, one per constraint (populated when optimal): the final
    #: objective-row coefficients of the slack columns, sign-corrected for
    #: rows phase I flipped — the shadow price of each resource.
    duals: Optional[np.ndarray] = None
    #: final reduced costs of the original variables (>= -tol at optimum).
    reduced_costs: Optional[np.ndarray] = None


@dataclass
class _Tableau:
    """The distributed tableau plus the host-side bookkeeping."""

    T: DistributedMatrix
    m: int            # constraint rows
    n: int            # original variables
    n_slack: int
    n_art: int
    basis: List[int]  # column index basic in each constraint row

    @property
    def width(self) -> int:
        return self.n + self.n_slack + self.n_art + 1

    @property
    def rhs_col(self) -> int:
        return self.width - 1

    @property
    def z_row(self) -> int:
        return self.m

    @property
    def w_row(self) -> int:
        return self.m + 1


def _build_tableau(
    machine: Hypercube,
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    matrix_cls: Type[DistributedMatrix],
) -> _Tableau:
    """Assemble the host tableau and embed it (front-end set-up, untimed)."""
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    m, n = A.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ShapeError(
            f"shape mismatch: A {A.shape}, b {b.shape}, c {c.shape}"
        )

    flip = b < 0
    A = np.where(flip[:, None], -A, A)
    slack_sign = np.where(flip, -1.0, 1.0)
    b = np.abs(b)
    art_rows = np.nonzero(flip)[0]
    n_art = len(art_rows)

    n_obj_rows = 2 if n_art else 1
    width = n + m + n_art + 1
    T = np.zeros((m + n_obj_rows, width))
    T[:m, :n] = A
    T[:m, n : n + m] = np.diag(slack_sign)
    T[:m, -1] = b
    T[m, :n] = -c  # phase II objective (z-row): maximise c·x

    basis = [n + i for i in range(m)]
    for k, i in enumerate(art_rows):
        col = n + m + k
        T[i, col] = 1.0
        basis[i] = col
    if n_art:
        # phase I objective (w-row): maximise -(sum of artificials),
        # canonicalised by subtracting the artificial rows.
        T[m + 1] = -T[art_rows].sum(axis=0)
        T[m + 1, n + m : n + m + n_art] = 0.0

    return _Tableau(
        T=matrix_cls.from_numpy(machine, T),
        m=m,
        n=n,
        n_slack=m,
        n_art=n_art,
        basis=basis,
    )


def _pivot(
    tab: _Tableau,
    r: int,
    j: int,
    row_iota: DistributedVector,
) -> None:
    """One pivot on (row r, column j), updating every tableau row."""
    T = tab.T
    prow = T.extract(axis=0, index=r)
    pval = prow.get_global(j)
    prow = prow * (1.0 / pval)
    T = T.insert(axis=0, index=r, vector=prow)
    col = T.extract(axis=1, index=j)
    not_r = ~row_iota.eq(r)
    mcol = not_r.where(col, 0.0)
    T = T.sub_outer(mcol, prow)
    # Basic columns are exactly unit vectors in real arithmetic; pin the
    # pivot column so round-off never accumulates in later reduced costs.
    unit = row_iota.eq(r).where(1.0, 0.0)
    T = T.insert(axis=1, index=j, vector=unit)
    tab.T = T
    tab.basis[r] = j


def _run_phase(
    tab: _Tableau,
    obj_row: int,
    allow_artificial: bool,
    rule: str,
    tol: float,
    max_iters: int,
    pivots: List[Tuple[int, int]],
) -> Tuple[Status, int]:
    """Pivot until the given objective row is optimal."""
    machine = tab.T.machine
    col_iota = None
    row_iota = None
    n_real = tab.n + tab.n_slack

    for it in range(max_iters):
        with machine.phase("entering"):
            obj = tab.T.extract(axis=0, index=obj_row)
            if col_iota is None:
                col_iota = iota(obj.embedding)
            eligible = (obj < -tol) & (col_iota < (
                tab.width - 1 if allow_artificial else n_real
            ))
            if rule == "dantzig":
                _, j = obj.argreduce("min", valid=eligible)
            else:  # bland: smallest eligible index
                _, j = col_iota.argreduce("min", valid=eligible)
        if j < 0:
            return "optimal", it

        with machine.phase("ratio-test"):
            col = tab.T.extract(axis=1, index=j)
            if row_iota is None:
                row_iota = iota(col.embedding)
            rhs = tab.T.extract(axis=1, index=tab.rhs_col)
            is_constraint = row_iota < tab.m
            pos = (col > tol) & is_constraint
            safe = pos.where(col, 1.0)
            ratios = pos.where(rhs / safe, np.inf)
            _, r = ratios.argreduce("min", valid=pos)
        if r < 0:
            return "unbounded", it

        with machine.phase("pivot"):
            _pivot(tab, int(r), int(j), row_iota)
        pivots.append((int(r), int(j)))
    return "iteration_limit", max_iters


def _drive_out_artificials(
    tab: _Tableau, tol: float, pivots: List[Tuple[int, int]]
) -> None:
    """Pivot zero-level basic artificials out where possible.

    A row whose artificial cannot be driven out is linearly dependent; it
    is left in place (the artificial stays basic at level zero and is
    excluded from entering in phase II, so it never moves again).
    """
    n_real = tab.n + tab.n_slack
    machine = tab.T.machine
    row_iota = None
    for r in range(tab.m):
        if tab.basis[r] < n_real:
            continue
        row = tab.T.extract(axis=0, index=r)
        col_iota = iota(row.embedding)
        eligible = (abs(row) > tol) & (col_iota < n_real)
        val, j = abs(row).argreduce("max", valid=eligible)
        if j < 0:
            continue  # redundant row
        if row_iota is None:
            col0 = tab.T.extract(axis=1, index=int(j))
            row_iota = iota(col0.embedding)
        with machine.phase("pivot"):
            _pivot(tab, r, int(j), row_iota)
        pivots.append((r, int(j)))


def solve(
    machine: Hypercube,
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    rule: str = "dantzig",
    tol: float = 1e-9,
    max_iters: Optional[int] = None,
    matrix_cls: Optional[Type[DistributedMatrix]] = None,
) -> SimplexResult:
    """Solve ``max c·x s.t. A x <= b, x >= 0`` on the simulated machine.

    ``rule`` selects the entering rule: ``'dantzig'`` (most negative
    reduced cost; fast in practice) or ``'bland'`` (smallest index;
    cycle-free).  ``matrix_cls`` selects the primitive implementation —
    pass the naive baseline class to run the identical algorithm on naive
    collectives.  The default follows the machine: the checksummed matrix
    when an ABFT manager is attached, the standard one otherwise.
    """
    if rule not in ("dantzig", "bland"):
        raise ConfigError(f"rule must be 'dantzig' or 'bland', got {rule!r}")
    if matrix_cls is None:
        if machine.abft is not None:
            from ..abft.arrays import ABFTMatrix

            matrix_cls = ABFTMatrix
        else:
            matrix_cls = DistributedMatrix
    tab = _build_tableau(machine, A, b, c, matrix_cls)
    if max_iters is None:
        max_iters = 50 * (tab.m + tab.n)

    pivots: List[Tuple[int, int]] = []
    start = machine.snapshot()
    phase1_iters = 0

    with machine.phase("simplex"):
        if tab.n_art:
            status, phase1_iters = _run_phase(
                tab,
                obj_row=tab.w_row,
                allow_artificial=True,
                rule=rule,
                tol=tol,
                max_iters=max_iters,
                pivots=pivots,
            )
            if status == "iteration_limit":
                return SimplexResult(
                    status, np.nan, np.zeros(tab.n), phase1_iters,
                    phase1_iters, tab.basis, pivots,
                    machine.elapsed_since(start),
                )
            w_value = tab.T.get_global(tab.w_row, tab.rhs_col)
            if w_value < -tol:
                return SimplexResult(
                    "infeasible", np.nan, np.zeros(tab.n), phase1_iters,
                    phase1_iters, tab.basis, pivots,
                    machine.elapsed_since(start),
                )
            _drive_out_artificials(tab, tol, pivots)

        status, phase2_iters = _run_phase(
            tab,
            obj_row=tab.z_row,
            allow_artificial=False,
            rule=rule,
            tol=tol,
            max_iters=max_iters,
            pivots=pivots,
        )

    cost = machine.elapsed_since(start)
    iterations = phase1_iters + phase2_iters

    if status == "unbounded":
        return SimplexResult(
            "unbounded", np.inf, np.zeros(tab.n), iterations,
            phase1_iters, tab.basis, pivots, cost,
        )

    # Read the solution off the final tableau (front-end output, untimed).
    host = tab.T.to_numpy()
    x_full = np.zeros(tab.width - 1)
    for r, col in enumerate(tab.basis):
        x_full[col] = host[r, tab.rhs_col]
    objective = float(host[tab.z_row, tab.rhs_col])
    # Duals: z-row coefficients of the slack columns.  For rows phase I
    # sign-flipped both the constraint and its slack coefficient were
    # negated, so the z-row entry already equals the *original* dual.
    duals = host[tab.z_row, tab.n : tab.n + tab.n_slack].copy()
    reduced_costs = host[tab.z_row, : tab.n].copy()
    return SimplexResult(
        status=status,
        objective=objective,
        x=x_full[: tab.n].copy(),
        iterations=iterations,
        phase1_iterations=phase1_iters,
        basis=list(tab.basis),
        pivots=pivots,
        cost=cost,
        duals=duals,
        reduced_costs=reduced_costs,
    )
