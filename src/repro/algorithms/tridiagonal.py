"""Tridiagonal solvers: substructuring + parallel cyclic reduction.

No theme recurs more often in the TMC/Yale report series around the paper
than concurrent tridiagonal solvers (Johnsson's "Solving Tridiagonal
Systems on Ensemble Architectures", the Johnsson-Ho Alternating-Direction
papers, the wide-angle wave-equation implementation "using substructuring
and odd-even cyclic reduction").  This module implements that method on
the simulated machine:

1. **Substructuring (local).**  Each processor owns a contiguous block of
   rows.  A downward sweep eliminates the sub-diagonal, an upward sweep
   the super-diagonal; afterwards every local row couples only the block's
   *interface* unknowns: ``A'_i x_left + b'_i x_i + C'_i x_right = d'_i``
   where ``x_left``/``x_right`` are the neighbouring blocks' boundary
   unknowns.  Pure local arithmetic, ``O(n/p)``.

2. **Reduced interface system (global).**  The first and last row of each
   block form a 2×2-block tridiagonal system in the boundary pairs
   ``z_q = (x_first, x_last)``.  It is solved by **parallel cyclic
   reduction**: ``ceil(lg p)`` steps, each combining with the rows at
   distance ``2^k`` (two small routed shifts per step) — the log-depth
   recurrence solve that makes the method scale.

3. **Back substitution (local).**  One exchange of the boundary values
   with each neighbour, then every interior unknown falls out in one
   vectorised pass.

Arbitrary ``n`` is supported by padding the *global tail* with identity
rows (``x = 0``), which cannot break the chain coupling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from ..machine.router import Router
from ..errors import ShapeError


@dataclass
class TridiagonalResult:
    """Solution plus simulated cost."""

    x: np.ndarray
    cost: CostSnapshot


def thomas(a: np.ndarray, b: np.ndarray, c: np.ndarray,
           d: np.ndarray) -> np.ndarray:
    """Serial Thomas algorithm (the correctness oracle and p=1 baseline)."""
    n = len(b)
    cp = np.zeros(n)
    dp = np.zeros(n)
    cp[0] = c[0] / b[0]
    dp[0] = d[0] / b[0]
    for i in range(1, n):
        denom = b[i] - a[i] * cp[i - 1]
        cp[i] = c[i] / denom
        dp[i] = (d[i] - a[i] * dp[i - 1]) / denom
    x = np.zeros(n)
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def _shift(machine: Hypercube, arrays, h: int, fill):
    """Fetch each processor's arrays from processor ``q - h`` (charged).

    ``arrays`` is a list of (p, ...) arrays; out-of-range processors
    receive the corresponding ``fill`` values.  The shift is a (partial)
    permutation routed through the e-cube router; all arrays ride in one
    message whose size is their combined per-processor element count.
    """
    p = machine.p
    if h == 0 or abs(h) >= p:
        return [np.broadcast_to(f, a.shape).copy()
                for a, f in zip(arrays, fill)]
    size = float(sum(int(np.prod(a.shape[1:], dtype=np.int64)) or 1
                     for a in arrays))
    if h > 0:
        src = np.arange(0, p - h)
        dst = src + h
    else:
        src = np.arange(-h, p)
        dst = src + h
    Router(machine).simulate(src, dst, np.full(len(src), size))
    out = []
    for a, f in zip(arrays, fill):
        res = np.empty_like(a)
        res[...] = f
        if h > 0:
            res[h:] = a[:-h]
        else:
            res[:h] = a[-h:]
        out.append(res)
    return out


def solve(
    machine: Hypercube,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
) -> TridiagonalResult:
    """Solve the tridiagonal system ``a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i``.

    ``a[0]`` and ``c[-1]`` are ignored (must be the system's open ends).
    Requires a diagonally dominant (or otherwise elimination-stable)
    system, like the sweeps of the Thomas algorithm it parallelises.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    n = len(b)
    if not (len(a) == len(c) == len(d) == n):
        raise ShapeError("a, b, c, d must have equal lengths")
    if n < 1:
        raise ShapeError("empty system")
    p = machine.p

    start = machine.snapshot()
    with machine.phase("tridiagonal"):
        # pad the global tail with identity rows so every block has the
        # same length L; decoupled (a = c = 0), so the chain is intact
        L = -(-n // p)
        N = p * L
        A0 = np.zeros(N); B0 = np.ones(N); C0 = np.zeros(N); D0 = np.zeros(N)
        A0[:n] = a; B0[:n] = b; C0[:n] = c; D0[:n] = d
        A0[0] = 0.0; C0[n - 1] = 0.0
        la = A0.reshape(p, L); lb = B0.reshape(p, L)
        lc = C0.reshape(p, L); ld = D0.reshape(p, L)

        # --- phase 1: substructuring sweeps (local, vectorised over p) ----
        # downward: eliminate the sub-diagonal; Aw tracks coupling to the
        # left neighbour's last unknown
        Aw = np.zeros((p, L)); Aw[:, 0] = la[:, 0]
        bw = lb.copy(); dw = ld.copy()
        for i in range(1, L):
            m = la[:, i] / bw[:, i - 1]
            Aw[:, i] = -m * Aw[:, i - 1]
            bw[:, i] = lb[:, i] - m * lc[:, i - 1]
            dw[:, i] = dw[:, i] - m * dw[:, i - 1]
            machine.charge_flops(6)
        # upward: eliminate the super-diagonal; Cw tracks coupling to the
        # right neighbour's first unknown
        Cw = np.zeros((p, L)); Cw[:, L - 1] = lc[:, L - 1]
        for i in range(L - 2, -1, -1):
            m = lc[:, i] / bw[:, i + 1]
            Aw[:, i] = Aw[:, i] - m * Aw[:, i + 1]
            Cw[:, i] = -m * Cw[:, i + 1]
            dw[:, i] = dw[:, i] - m * dw[:, i + 1]
            machine.charge_flops(6)

        # --- phase 2: reduced interface system by block PCR ----------------
        # unknown pair per block: z_q = (x_first, x_last); rows 0 and L-1:
        #   A'_i * z_{q-1}[1] + b'_i * (z_q component) + C'_i * z_{q+1}[0] = d'_i
        if L == 1:
            # one row per block: scalar PCR
            Ar = Aw[:, 0].copy(); Br = bw[:, 0].copy()
            Cr = Cw[:, 0].copy(); Fr = dw[:, 0].copy()
            h = 1
            while h < p:
                Am, Bm, Cm, Fm = _shift(machine, [Ar, Br, Cr, Fr], h,
                                        [0.0, 1.0, 0.0, 0.0])
                Ap, Bp, Cp, Fp = _shift(machine, [Ar, Br, Cr, Fr], -h,
                                        [0.0, 1.0, 0.0, 0.0])
                alpha = Ar / Bm
                gamma = Cr / Bp
                Ar2 = -alpha * Am
                Cr2 = -gamma * Cp
                Br2 = Br - alpha * Cm - gamma * Ap
                Fr2 = Fr - alpha * Fm - gamma * Fp
                machine.charge_flops(12)
                Ar, Br, Cr, Fr = Ar2, Br2, Cr2, Fr2
                h *= 2
            z_first = Fr / Br
            z_last = z_first
            machine.charge_flops(1)
        else:
            # 2x2-block PCR: B diag(b'_0, b'_{L-1});
            # A couples only z_{q-1}[1]; C only z_{q+1}[0]
            Ar = np.zeros((p, 2, 2)); Ar[:, 0, 1] = Aw[:, 0]
            Ar[:, 1, 1] = Aw[:, L - 1]
            Br = np.zeros((p, 2, 2)); Br[:, 0, 0] = bw[:, 0]
            Br[:, 1, 1] = bw[:, L - 1]
            Cr = np.zeros((p, 2, 2)); Cr[:, 0, 0] = Cw[:, 0]
            Cr[:, 1, 0] = Cw[:, L - 1]
            Fr = np.stack([dw[:, 0], dw[:, L - 1]], axis=1)
            eye = np.zeros((1, 2, 2)); eye[0, 0, 0] = eye[0, 1, 1] = 1.0

            def inv2(M):
                det = M[:, 0, 0] * M[:, 1, 1] - M[:, 0, 1] * M[:, 1, 0]
                out = np.empty_like(M)
                out[:, 0, 0] = M[:, 1, 1] / det
                out[:, 1, 1] = M[:, 0, 0] / det
                out[:, 0, 1] = -M[:, 0, 1] / det
                out[:, 1, 0] = -M[:, 1, 0] / det
                return out

            h = 1
            while h < p:
                Am, Bm, Cm, Fm = _shift(
                    machine, [Ar, Br, Cr, Fr], h,
                    [np.zeros((2, 2)), eye[0], np.zeros((2, 2)), np.zeros(2)],
                )
                Ap, Bp, Cp, Fp = _shift(
                    machine, [Ar, Br, Cr, Fr], -h,
                    [np.zeros((2, 2)), eye[0], np.zeros((2, 2)), np.zeros(2)],
                )
                alpha = Ar @ inv2(Bm)
                gamma = Cr @ inv2(Bp)
                Ar2 = -(alpha @ Am)
                Cr2 = -(gamma @ Cp)
                Br2 = Br - alpha @ Cm - gamma @ Ap
                Fr2 = (Fr - np.einsum("qij,qj->qi", alpha, Fm)
                       - np.einsum("qij,qj->qi", gamma, Fp))
                machine.charge_flops(60)  # the 2x2 algebra
                Ar, Br, Cr, Fr = Ar2, Br2, Cr2, Fr2
                h *= 2
            z = np.einsum("qij,qj->qi", inv2(Br), Fr)
            machine.charge_flops(10)
            z_first = z[:, 0]
            z_last = z[:, 1]

        # --- phase 3: back substitution (one neighbour exchange) -----------
        (left_last,) = _shift(machine, [z_last], 1, [0.0])
        (right_first,) = _shift(machine, [z_first], -1, [0.0])
        x_local = (dw - Aw * left_last[:, None]
                   - Cw * right_first[:, None]) / bw
        machine.charge_flops(5 * L)

    x = x_local.reshape(N)[:n].copy()
    return TridiagonalResult(x=x, cost=machine.elapsed_since(start))


@dataclass
class BatchResult:
    """Solutions of a batch of systems plus simulated cost."""

    x: np.ndarray  # (k, n)
    cost: CostSnapshot


def solve_many(
    machine: Hypercube,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
) -> BatchResult:
    """Solve ``k`` independent tridiagonal systems (rows of the inputs).

    Implements the conclusion of Johnsson-Ho's "Multiple Tridiagonal
    Systems" paper: "the optimum partitioning of a set of independent
    tridiagonal systems among a set of processors yields the
    embarrassingly parallel case."  With ``k >= p`` the systems are dealt
    round-robin and each processor runs local Thomas sweeps — zero
    communication, ``O(k n / p)`` time (the ADI inner loop).  With
    ``k < p`` the machine is split into ``k`` subcube groups and each
    system is solved by the substructured PCR of :func:`solve` inside its
    group — modelled here by running the single-system solver on an
    appropriately sized sub-machine and charging the worst group.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    c = np.atleast_2d(np.asarray(c, dtype=np.float64))
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    k, n = b.shape
    if not (a.shape == b.shape == c.shape == d.shape):
        raise ShapeError("a, b, c, d must share the (k, n) shape")
    p = machine.p

    start = machine.snapshot()
    with machine.phase("tridiagonal-batch"):
        if k >= p:
            # embarrassingly parallel: vectorised Thomas over the batch;
            # the SIMD time is that of the most loaded processor
            per_proc = -(-k // p)
            cp = np.zeros((k, n))
            dp = np.zeros((k, n))
            cp[:, 0] = c[:, 0] / b[:, 0]
            dp[:, 0] = d[:, 0] / b[:, 0]
            for i in range(1, n):
                denom = b[:, i] - a[:, i] * cp[:, i - 1]
                cp[:, i] = c[:, i] / denom
                dp[:, i] = (d[:, i] - a[:, i] * dp[:, i - 1]) / denom
                machine.charge_flops(5 * per_proc)
            x = np.zeros((k, n))
            x[:, -1] = dp[:, -1]
            for i in range(n - 2, -1, -1):
                x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
                machine.charge_flops(2 * per_proc)
        else:
            # split the cube into k groups; each group runs the
            # substructured PCR independently.  The groups execute
            # concurrently, so the machine-level time is ONE group's time:
            # solve on a sub-machine and merge the worst cost.
            group_dims = max(machine.n - max(k - 1, 0).bit_length(), 0)
            x = np.zeros((k, n))
            worst = None
            for j in range(k):
                sub = Hypercube(group_dims, machine.cost_model)
                res = solve(sub, a[j], b[j], c[j], d[j])
                x[j] = res.x
                if worst is None or res.cost.time > worst.time:
                    worst = res.cost
            machine.counters.charge_transfer(
                worst.elements_transferred, worst.comm_rounds, 0.0
            )
            machine.counters.charge_flops(worst.flops, 0.0)
            machine.counters.charge_time(worst.time)
    return BatchResult(x=x, cost=machine.elapsed_since(start))
