"""Graph workloads on the sparse semiring primitives (GraphBLAS style).

Per the "Standards for Graph Algorithm Primitives" formulation, each
algorithm is a short loop of semiring :func:`~repro.sparse.primitives.spmv`
calls over the graph's adjacency matrix:

* :func:`bfs` — level-synchronous breadth-first search: the frontier is a
  Boolean vector, one ``or_and`` spmv per level;
* :func:`sssp` — Bellman-Ford single-source shortest paths: one
  ``min_plus`` spmv per relaxation round;
* :func:`connected_components` — min-label propagation: ``min_plus`` spmv
  over the 0-weight pattern matrix, labels initialized to vertex ids.

All data is integer (or Boolean), so every result is exact and
bit-comparable against the pure-NumPy references below and the NetworkX
oracle cells.  Distances use ``INT_INF`` (the int64 maximum — the
``min_plus`` zero) as the unreachable sentinel internally and report ``-1``;
the annihilator shortcut in ``spmv`` masks absent entries instead of
multiplying through them, so the sentinel never enters arithmetic.

Convergence is detected honestly: each iteration reduces a per-processor
"anything changed" flag with :func:`~repro.comm.collectives.reduce_all` and
reads one scalar back to the front end — the same charged pattern the dense
iterative solvers use.

This module imports :mod:`repro.sparse` lazily (inside the functions), so
merely importing :mod:`repro.algorithms` keeps dense runs sparse-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

import numpy as np

from ..comm.collectives import reduce_all
from ..errors import ConfigError
from ..machine.counters import CostSnapshot
from ..workloads import GraphInstance

#: The int64 "infinity": the ``min_plus`` semiring's zero for int64.
INT_INF = np.int64(np.iinfo(np.int64).max)


@dataclass(frozen=True)
class GraphResult:
    """Per-vertex result values plus iteration and cost accounting."""

    values: np.ndarray
    iterations: int
    cost: CostSnapshot


def _check_source(graph: GraphInstance, source: int) -> None:
    if not (0 <= source < graph.n):
        raise ConfigError(
            f"source vertex {source} out of range for {graph.n} vertices"
        )


def _any_flag(machine, embedding, blocks: List[np.ndarray]) -> bool:
    """Global "any rank has a truthy block" — charged like the solvers.

    One local reduction pass per rank (lockstep, max segment volume), a
    ``lg p``-round Boolean all-reduce, and one front-end scalar read.
    """
    flags = np.zeros(machine.p, dtype=bool)
    for r, blk in enumerate(blocks):
        if blk.size and bool(blk.any()):
            flags[int(embedding.pid_of_rank(r))] = True
    machine.charge_flops(embedding.max_count)
    out = reduce_all(machine, machine.pvar(flags), "any")
    return bool(machine.read_scalar(out))


def bfs(session: Any, graph: GraphInstance, source: int) -> GraphResult:
    """Level-synchronous BFS; returns per-vertex levels (-1 = unreachable)."""
    from ..sparse import SparseMatrix, SparseVector, spmv

    _check_source(graph, source)
    machine = session.machine
    n = graph.n
    start = machine.snapshot()
    with machine.phase("bfs"):
        A = SparseMatrix.from_coo(
            machine,
            graph.rows,
            graph.cols,
            np.ones(graph.rows.size, dtype=bool),
            (n, n),
        )
        emb = A.embedding
        seed = np.zeros(n, dtype=bool)
        seed[source] = True
        frontier = SparseVector.from_numpy(
            machine, seed, fill=False, embedding=emb
        )
        visited = frontier.copy()
        levels = SparseVector.from_numpy(
            machine,
            np.where(seed, np.int64(0), np.int64(-1)),
            fill=np.int64(-1),
            embedding=emb,
        )
        depth = 0
        iterations = 0
        while depth <= n:
            reached = spmv(A, frontier, "or_and")
            new = reached.elementwise(
                visited, lambda a, b: a & ~b, fill=False
            )
            iterations += 1
            depth += 1
            if not _any_flag(machine, emb, new.blocks):
                break
            levels = levels.elementwise(
                new,
                lambda lvl, m, d=depth: np.where(m, np.int64(d), lvl),
                fill=np.int64(-1),
            )
            visited = visited.elementwise(new, np.logical_or, fill=False)
            frontier = new
        values = levels.to_numpy()
    return GraphResult(values, iterations, machine.elapsed_since(start))


def _min_plus_fixpoint(
    session: Any,
    graph: GraphInstance,
    edge_values: np.ndarray,
    init: np.ndarray,
    phase: str,
) -> GraphResult:
    """Iterate ``x = min(x, A min.+ x)`` to a fixpoint (≤ n rounds)."""
    from ..sparse import SparseMatrix, SparseVector, spmv

    machine = session.machine
    n = graph.n
    start = machine.snapshot()
    with machine.phase(phase):
        A = SparseMatrix.from_coo(
            machine, graph.rows, graph.cols, edge_values, (n, n)
        )
        emb = A.embedding
        state = SparseVector.from_numpy(
            machine, init, fill=INT_INF, embedding=emb
        )
        iterations = 0
        for _ in range(n):
            cand = spmv(A, state, "min_plus")
            new = state.elementwise(cand, np.minimum, fill=INT_INF)
            iterations += 1
            machine.charge_flops(emb.max_count)  # the != comparison pass
            changed = [
                a != b for a, b in zip(new.blocks, state.blocks)
            ]
            state = new
            if not _any_flag(machine, emb, changed):
                break
        values = state.to_numpy()
    return GraphResult(values, iterations, machine.elapsed_since(start))


def sssp(session: Any, graph: GraphInstance, source: int) -> GraphResult:
    """Bellman-Ford distances; exact int64, -1 for unreachable vertices."""
    _check_source(graph, source)
    init = np.full(graph.n, INT_INF, dtype=np.int64)
    init[source] = 0
    res = _min_plus_fixpoint(
        session, graph, graph.weights.astype(np.int64), init, "sssp"
    )
    values = np.where(res.values == INT_INF, np.int64(-1), res.values)
    return GraphResult(values, res.iterations, res.cost)


def connected_components(session: Any, graph: GraphInstance) -> GraphResult:
    """Min-label propagation; each vertex gets its component's least id."""
    init = np.arange(graph.n, dtype=np.int64)
    zero_weights = np.zeros(graph.rows.size, dtype=np.int64)
    return _min_plus_fixpoint(session, graph, zero_weights, init, "cc")


# -- pure-NumPy references (no scipy/NetworkX) ---------------------------------


def bfs_reference(graph: GraphInstance, source: int) -> np.ndarray:
    """Serial BFS levels over the COO arc list; -1 for unreachable."""
    _check_source(graph, source)
    levels = np.full(graph.n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(graph.n, dtype=bool)
    frontier[source] = True
    depth = 0
    while frontier.any():
        depth += 1
        sel = frontier[graph.rows]
        reach = np.zeros(graph.n, dtype=bool)
        reach[graph.cols[sel]] = True
        new = reach & (levels < 0)
        levels[new] = depth
        frontier = new
    return levels


def sssp_reference(graph: GraphInstance, source: int) -> np.ndarray:
    """Serial Bellman-Ford over the arc list; -1 for unreachable."""
    _check_source(graph, source)
    dist = np.full(graph.n, INT_INF, dtype=np.int64)
    dist[source] = 0
    for _ in range(graph.n):
        sel = dist[graph.rows] != INT_INF
        cand = np.full(graph.n, INT_INF, dtype=np.int64)
        np.minimum.at(
            cand,
            graph.cols[sel],
            dist[graph.rows[sel]] + graph.weights[sel],
        )
        new = np.minimum(dist, cand)
        if np.array_equal(new, dist):
            break
        dist = new
    return np.where(dist == INT_INF, np.int64(-1), dist)


def cc_reference(graph: GraphInstance) -> np.ndarray:
    """Serial min-label propagation; least vertex id per component."""
    labels = np.arange(graph.n, dtype=np.int64)
    while True:
        cand = np.full(graph.n, INT_INF, dtype=np.int64)
        np.minimum.at(cand, graph.cols, labels[graph.rows])
        new = np.minimum(labels, cand)
        if np.array_equal(new, labels):
            return labels
        labels = new


# -- resilient-runner workload factory ------------------------------------------


def bfs_workload(
    graph: GraphInstance, source: int = 0
) -> Callable[[Any, Any], np.ndarray]:
    """BFS as a :func:`~repro.faults.recovery.run_resilient` workload.

    Like the matvec workload, a single traversal is cheap to redo and
    deterministic, so recovery restarts from scratch on the survivor
    subcube; integer levels make the recovered result bit-identical to
    fault-free.
    """

    def run(session: Any, store: Any) -> np.ndarray:
        store.restore()
        return bfs(session, graph, source).values

    return run


__all__ = [
    "GraphResult",
    "INT_INF",
    "bfs",
    "bfs_reference",
    "bfs_workload",
    "cc_reference",
    "connected_components",
    "sssp",
    "sssp_reference",
]
