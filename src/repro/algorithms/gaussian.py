"""Application 2: Gaussian elimination with partial pivoting.

The paper's second application.  Written entirely in the four primitives:

* pivot search      — ``argreduce`` (arg-max of |column k| over candidate rows);
* row swap          — two ``extract`` / two ``insert`` (or *no* data motion
  with implicit pivoting, which only tracks the permutation);
* multiplier column — ``extract`` column k, scale, mask;
* elimination       — one rank-1 update (``distribute`` + local arithmetic);
* back substitution — column sweeps: ``extract`` column k, axpy.

Per elimination step the communication is a constant number of ``lg p``
round collectives while the arithmetic is the ``O(m/p)`` local rank-1
update, so for ``m > p lg p`` the arithmetic dominates and the whole solve
is processor-time optimal to a constant — the paper's headline claim,
audited in :mod:`repro.analysis.optimality`.

Pivoting strategies
-------------------
``'partial'``
    classic partial pivoting with physical row swaps (two extracts + two
    inserts per swap);
``'implicit'``
    partial pivoting *without* moving rows: the pivot order is tracked and
    back substitution reads rows in pivot order — trading the swap traffic
    for one mask update per step (an ablation target: see
    ``benchmarks/bench_ablation.py``);
``'none'``
    no pivoting (diagonal pivots; fails on zero diagonals).

On top of the factorisation: :func:`solve` (one RHS), :func:`solve_multi`
(blocked RHS), :func:`invert` and :func:`determinant`.

The functions take any :class:`~repro.core.arrays.DistributedMatrix`
subclass, so the naive baseline runs the *identical* algorithm text with
its own primitive implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, iota
from ..errors import ConfigError, ShapeError

PIVOTING_MODES = ("partial", "implicit", "none")


class SingularMatrixError(np.linalg.LinAlgError):
    """Raised when no acceptable pivot exists at some elimination step."""


@dataclass
class GaussianResult:
    """Solution plus provenance: pivot order and simulated cost."""

    x: np.ndarray
    pivots: List[int]
    cost: CostSnapshot
    tableau: Optional[DistributedMatrix] = None


@dataclass
class Elimination:
    """A forward-eliminated tableau.

    ``pivots[k]`` is the row used as the k-th pivot; with explicit swapping
    it records which row was *brought to* position k (so the tableau is
    upper triangular in place), with implicit pivoting the rows stay put
    and ``pivots`` is the row permutation back substitution must follow.
    ``pivot_values[k]`` is the pivot element — their product (signed by the
    permutation parity) is the determinant.
    """

    tableau: DistributedMatrix
    pivots: List[int]
    pivot_values: List[float]
    pivoting: str

    def row_of_step(self, k: int) -> int:
        """The tableau row holding the k-th pivot after elimination."""
        return self.pivots[k] if self.pivoting == "implicit" else k

    def permutation_sign(self) -> float:
        """Parity of the pivot permutation (the determinant's sign factor)."""
        if self.pivoting == "implicit":
            perm = list(self.pivots)
        else:
            perm = list(range(len(self.pivots)))
            for k, piv in enumerate(self.pivots):
                if piv != k:
                    perm[k], perm[piv] = perm[piv], perm[k]
        sign = 1.0
        seen = [False] * len(perm)
        for start in range(len(perm)):
            if seen[start]:
                continue
            length = 0
            j = start
            while not seen[j]:
                seen[j] = True
                j = perm[j]
                length += 1
            if length % 2 == 0:
                sign = -sign
        return sign


def eliminate(
    T: DistributedMatrix,
    pivoting: str = "partial",
    tol: float = 1e-12,
    start: int = 0,
    pivots: Optional[List[int]] = None,
    pivot_values: Optional[List[float]] = None,
    on_step: Optional[callable] = None,
) -> Elimination:
    """Forward-eliminate an ``n × w`` tableau (``w >= n``).

    Columns ``n..w-1`` ride along as right-hand sides.  See the module
    docstring for the pivoting modes.

    ``start``/``pivots``/``pivot_values`` resume a partially eliminated
    tableau (degraded-mode recovery): ``T`` must be the tableau as it
    stood after step ``start - 1``, with ``pivots``/``pivot_values`` the
    history of steps ``0..start-1``.  ``on_step(k, T, pivots,
    pivot_values)`` fires after each completed step with ``k`` steps done
    and the *current* tableau — checkpoint hooks save from here.
    """
    if pivoting not in PIVOTING_MODES:
        raise ConfigError(
            f"pivoting must be one of {PIVOTING_MODES}, got {pivoting!r}"
        )
    n, w = T.shape
    if w < n:
        raise ShapeError("tableau must have at least as many columns as rows")
    pivots = list(pivots) if pivots is not None else []
    pivot_values = list(pivot_values) if pivot_values is not None else []
    if not (0 <= start <= n):
        raise ConfigError(f"start must be in [0, {n}], got {start}")
    if len(pivots) != start or len(pivot_values) != start:
        raise ConfigError(
            f"resuming at step {start} requires {start} prior pivots/values, "
            f"got {len(pivots)}/{len(pivot_values)}"
        )
    machine = T.machine
    row_iota = None
    not_pivoted = None  # implicit mode: rows still awaiting their pivot

    for k in range(start, n):
        with machine.phase("pivot-search"):
            col = T.extract(axis=1, index=k)
            if row_iota is None:
                row_iota = iota(col.embedding)
                if pivoting == "implicit":
                    # Reconstruct the pending-rows mask from the pivot
                    # history on resume: rows already used as pivots are out.
                    not_pivoted = row_iota >= 0
                    for used in pivots:
                        not_pivoted = not_pivoted & ~row_iota.eq(int(used))
            if pivoting == "partial":
                candidates = row_iota >= k
            elif pivoting == "implicit":
                candidates = not_pivoted
            else:
                candidates = None
            if pivoting == "none":
                prow = k
                pval = col.get_global(k)
                if abs(pval) <= tol:
                    raise SingularMatrixError(
                        f"zero diagonal at step {k} with pivoting='none'"
                    )
            else:
                pval, prow = abs(col).argreduce("max", valid=candidates)
                if prow < 0 or abs(pval) <= tol:
                    raise SingularMatrixError(
                        f"no pivot above tolerance at elimination step {k}"
                    )
        pivots.append(int(prow))

        if pivoting == "partial" and prow != k:
            with machine.phase("row-swap"):
                rk = T.extract(axis=0, index=k)
                rp = T.extract(axis=0, index=prow)
                T = T.insert(axis=0, index=k, vector=rp)
                T = T.insert(axis=0, index=prow, vector=rk)
            prow = k

        with machine.phase("update"):
            pivot_row = T.extract(axis=0, index=int(prow))
            pivot_val = pivot_row.get_global(k)
            pivot_values.append(float(pivot_val))
            col = T.extract(axis=1, index=k)
            if pivoting == "implicit":
                below = not_pivoted & ~row_iota.eq(int(prow))
                not_pivoted = not_pivoted & ~row_iota.eq(int(prow))
            else:
                below = row_iota > k
            mults = below.where(col / pivot_val, 0.0)
            T = T.sub_outer(mults, pivot_row)
            # The eliminated column is exactly zero in those rows in real
            # arithmetic; enforce it so round-off cannot leak into later
            # pivot searches.
            zero_col = below.where(0.0, T.extract(axis=1, index=k))
            T = T.insert(axis=1, index=k, vector=zero_col)
        if on_step is not None:
            on_step(k + 1, T, pivots, pivot_values)
    return Elimination(T, pivots, pivot_values, pivoting)


def back_substitute(
    elim: "Elimination | DistributedMatrix",
    rhs_col: Optional[int] = None,
    tol: float = 1e-12,
) -> np.ndarray:
    """Solve one right-hand side of an eliminated tableau by column sweeps.

    ``rhs_col`` selects which tableau column is the RHS (default: column
    ``n``, the classic augmented system).  Retires one unknown per sweep:
    read ``x_k`` from the pivot row of step ``k``, subtract ``x_k ×``
    column ``k`` from the RHS in the rows whose pivots are still pending.
    Accepts a bare upper-triangular tableau for convenience.
    """
    if isinstance(elim, DistributedMatrix):
        n = elim.shape[0]
        elim = Elimination(elim, list(range(n)), [], "partial")
    T = elim.tableau
    n, w = T.shape
    if rhs_col is None:
        rhs_col = n
    if not (n <= rhs_col < w):
        raise ConfigError(
            f"rhs_col {rhs_col} out of the RHS range [{n}, {w}) — "
            "expected an n x (n+k) tableau"
        )
    machine = T.machine
    x = np.zeros(n)
    with machine.phase("back-substitution"):
        rhs = T.extract(axis=1, index=rhs_col)
        row_iota = iota(rhs.embedding)
        pending = row_iota >= 0  # rows whose unknown is still unsolved
        for k in range(n - 1, -1, -1):
            r = elim.row_of_step(k)
            diag = T.get_global(r, k)
            if abs(diag) <= tol:
                raise SingularMatrixError(
                    f"zero diagonal at back-substitution step {k}"
                )
            xk = rhs.get_global(r) / diag
            x[k] = xk
            pending = pending & ~row_iota.eq(r)
            if k:
                colk = T.extract(axis=1, index=k)
                rhs = rhs - pending.where(colk, 0.0) * xk
    return x


def solve(
    A: DistributedMatrix,
    b: np.ndarray,
    pivoting: str = "partial",
    tol: float = 1e-12,
    keep_tableau: bool = False,
) -> GaussianResult:
    """Solve ``A x = b`` for a distributed square ``A`` and host ``b``.

    Builds the augmented ``[A | b]`` tableau in a fresh aspect-matched
    embedding, then forward elimination + back substitution.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b.shape}")
    machine = A.machine

    # Augment on the host: assembling [A | b] is front-end set-up, the same
    # untimed load the paper's timings exclude.
    host_T = np.hstack([A.to_numpy(), b[:, None]])
    T = type(A).from_numpy(machine, host_T)

    start = machine.snapshot()
    with machine.phase("gaussian"):
        elim = eliminate(T, pivoting=pivoting, tol=tol)
        x = back_substitute(elim, tol=tol)
    return GaussianResult(
        x=x,
        pivots=elim.pivots,
        cost=machine.elapsed_since(start),
        tableau=elim.tableau if keep_tableau else None,
    )


def solve_multi(
    A: DistributedMatrix,
    B: np.ndarray,
    pivoting: str = "partial",
    tol: float = 1e-12,
) -> GaussianResult:
    """Solve ``A X = B`` for ``k`` right-hand sides with one factorisation.

    Eliminates the blocked tableau ``[A | B]`` once (the RHS columns ride
    through the rank-1 updates for free) and back-substitutes each column.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        B = B[:, None]
    if B.shape[0] != n:
        raise ShapeError(f"B must have {n} rows, got {B.shape}")
    machine = A.machine
    k = B.shape[1]

    host_T = np.hstack([A.to_numpy(), B])
    T = type(A).from_numpy(machine, host_T)

    start = machine.snapshot()
    with machine.phase("gaussian"):
        elim = eliminate(T, pivoting=pivoting, tol=tol)
        X = np.column_stack(
            [back_substitute(elim, rhs_col=n + j, tol=tol) for j in range(k)]
        )
    return GaussianResult(
        x=X,
        pivots=elim.pivots,
        cost=machine.elapsed_since(start),
    )


def invert(
    A: DistributedMatrix,
    pivoting: str = "partial",
    tol: float = 1e-12,
) -> GaussianResult:
    """The matrix inverse via ``solve_multi(A, I)``."""
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    return solve_multi(A, np.eye(n), pivoting=pivoting, tol=tol)


def determinant(
    A: DistributedMatrix,
    tol: float = 1e-12,
) -> float:
    """The determinant: product of the pivots times the permutation sign.

    Returns 0.0 for (numerically) singular matrices.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    machine = A.machine
    T = type(A).from_numpy(machine, A.to_numpy())
    with machine.phase("gaussian"):
        try:
            elim = eliminate(T, pivoting="partial", tol=tol)
        except SingularMatrixError:
            return 0.0
    det = elim.permutation_sign()
    for v in elim.pivot_values:
        det *= v
    return float(det)


def gauss_jordan(
    A: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-12,
) -> GaussianResult:
    """Solve ``A x = b`` by Gauss-Jordan elimination (no back substitution).

    Each step normalises the pivot row and eliminates the pivot column in
    *every* other row — roughly 1.5x the arithmetic of LU forward
    elimination, but the solution falls straight out of the final RHS
    column (handy when back substitution's n sequential host reads would
    dominate, i.e. small n on large p).  Partial pivoting with physical
    row swaps.
    """
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b.shape}")
    machine = A.machine
    host_T = np.hstack([A.to_numpy(), b[:, None]])
    T = type(A).from_numpy(machine, host_T)
    pivots: List[int] = []
    row_iota = None

    start = machine.snapshot()
    with machine.phase("gauss-jordan"):
        for k in range(n):
            with machine.phase("pivot-search"):
                col = T.extract(axis=1, index=k)
                if row_iota is None:
                    row_iota = iota(col.embedding)
                pval, prow = abs(col).argreduce("max", valid=row_iota >= k)
                if prow < 0 or abs(pval) <= tol:
                    raise SingularMatrixError(
                        f"no pivot above tolerance at step {k}"
                    )
            pivots.append(int(prow))
            if prow != k:
                with machine.phase("row-swap"):
                    rk = T.extract(axis=0, index=k)
                    rp = T.extract(axis=0, index=int(prow))
                    T = T.insert(axis=0, index=k, vector=rp)
                    T = T.insert(axis=0, index=int(prow), vector=rk)
            with machine.phase("update"):
                pivot_row = T.extract(axis=0, index=k)
                pivot_val = pivot_row.get_global(k)
                pivot_row = pivot_row * (1.0 / pivot_val)
                T = T.insert(axis=0, index=k, vector=pivot_row)
                col = T.extract(axis=1, index=k)
                others = ~row_iota.eq(k)
                mults = others.where(col, 0.0)
                T = T.sub_outer(mults, pivot_row)
                unit = row_iota.eq(k).where(1.0, 0.0)
                T = T.insert(axis=1, index=k, vector=unit)
        x_vec = T.extract(axis=1, index=n)
    x = x_vec.to_numpy()
    return GaussianResult(
        x=x, pivots=pivots, cost=machine.elapsed_since(start)
    )
