"""Radix-2 FFT on the distributed vector embedding.

The TMC report series this paper appeared in is full of Boolean-cube FFTs
(Johnsson, Ho, Jacquemin & Ruttenberg): the Cooley-Tukey butterfly pattern
*is* the cube's dimension structure, so an ``N = p·L`` point transform runs
``lg L`` purely local stages plus ``lg p`` stages of one exchange each —
the cube emulates the butterfly network without contention.

Layout: the input vector must be in *binary-coded block* vector order
(global index bits = [processor bits | local slot bits]), so butterfly
partners at distance ``>= L`` are exactly cube neighbours.  The initial
bit-reversal reordering is a stable dimension permutation routed through
the e-cube router.

Complex arithmetic charging: one butterfly pass over ``L`` local points is
charged 10 real flops per point (complex multiply = 6, two complex
adds = 4), matching the usual FFT operation count of ``5 N lg N`` total.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from ..machine.router import Router
from ..embeddings.vector import VectorOrderEmbedding
from ..errors import ConfigError, ShapeError


@dataclass
class FFTResult:
    """Transformed vector (host-side) plus simulated cost."""

    values: np.ndarray
    cost: CostSnapshot


def _bit_reverse_indices(t: int) -> np.ndarray:
    """The bit-reversal permutation of ``range(2**t)``."""
    idx = np.arange(1 << t)
    rev = np.zeros_like(idx)
    for b in range(t):
        rev |= ((idx >> b) & 1) << (t - 1 - b)
    return rev


def _check_embedding(machine: Hypercube, N: int) -> "tuple[int, int, int]":
    if N < 1 or (N & (N - 1)) != 0:
        raise ShapeError(f"FFT length must be a power of two, got {N}")
    t = N.bit_length() - 1
    if machine.p > N:
        raise ConfigError(
            f"machine has more processors ({machine.p}) than points ({N})"
        )
    L = N // machine.p
    return t, L, machine.n


def fft(
    machine: Hypercube,
    values: np.ndarray,
    inverse: bool = False,
) -> FFTResult:
    """Distributed radix-2 decimation-in-time FFT of ``2**t`` points.

    Loads the host vector into binary-coded block vector order, performs
    the bit-reversal permutation through the router, then ``t`` butterfly
    stages: the first ``lg L`` purely local, the remaining ``lg p`` with
    one cube exchange each.  Twiddle factors are computed from wired-in
    global indices (charged as local arithmetic).
    """
    values = np.asarray(values, dtype=np.complex128)
    if values.ndim != 1:
        raise ShapeError(f"expected a 1-D array, got shape {values.shape}")
    N = len(values)
    t, L, n = _check_embedding(machine, N)

    emb = VectorOrderEmbedding(machine, N, layout="block", coding="binary")
    data = emb.scatter(values).data  # (p, L)

    start = machine.snapshot()
    with machine.phase("fft"):
        # --- bit-reversal permutation (stable dimension permutation) -----
        rev = _bit_reverse_indices(t)
        g = np.arange(N)
        src_pid = g // L
        dst_pid = rev // L
        moving = src_pid != dst_pid
        if np.any(moving):
            pair = src_pid[moving] * machine.p + dst_pid[moving]
            pairs, counts = np.unique(pair, return_counts=True)
            Router(machine).simulate(
                pairs // machine.p, pairs % machine.p,
                counts.astype(np.float64),
            )
        machine.charge_local(2 * L)  # pack/unpack
        flat = data.reshape(N)
        flat = flat[_bit_reverse_indices(t)].copy()
        data = flat.reshape(machine.p, L)

        sign = 1.0 if inverse else -1.0
        lgL = L.bit_length() - 1

        # --- local stages: butterfly span < L ------------------------------
        for s in range(1, lgL + 1):
            half = 1 << (s - 1)
            m = 1 << s
            blocks = data.reshape(machine.p, L // m, m)
            u = blocks[:, :, :half]
            v = blocks[:, :, half:]
            w = np.exp(sign * 2j * np.pi * np.arange(half) / m)
            wv = w[None, None, :] * v
            blocks = np.concatenate([u + wv, u - wv], axis=2)
            data = blocks.reshape(machine.p, L)
            machine.charge_flops(10 * L)

        # --- cube stages: butterfly span >= L, one exchange per stage ------
        for s in range(lgL + 1, t + 1):
            half = 1 << (s - 1)
            m = 1 << s
            d = (s - 1) - lgL  # cube dimension carrying this span
            recv = machine.exchange(PVar(machine, data), d).data
            g_idx = emb.global_indices()  # (p, L) wired-in addresses
            e = np.mod(g_idx, m) % half
            w = np.exp(sign * 2j * np.pi * e / m)
            is_u = (machine.pids() >> d) & 1 == 0
            is_u = is_u[:, None]
            # u' = u + w v ;  v' = u - w v  (u on the 0-side of dim d)
            data = np.where(is_u, data + w * recv, recv - w * data)
            machine.charge_flops(10 * L)

        if inverse:
            data = data / N
            machine.charge_flops(2 * L)

    out = np.empty(N, dtype=np.complex128)
    out = data.reshape(N).copy()
    return FFTResult(values=out, cost=machine.elapsed_since(start))


def ifft(machine: Hypercube, values: np.ndarray) -> FFTResult:
    """Inverse transform (normalised by ``1/N``)."""
    return fft(machine, values, inverse=True)


def convolve(
    machine: Hypercube,
    a: np.ndarray,
    b: np.ndarray,
) -> FFTResult:
    """Circular convolution by the convolution theorem (three transforms)."""
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape or a.ndim != 1:
        raise ShapeError("convolve needs two 1-D arrays of equal length")
    start = machine.snapshot()
    fa = fft(machine, a).values
    fb = fft(machine, b).values
    machine.charge_flops(6 * len(a) / machine.p)  # pointwise complex product
    out = ifft(machine, fa * fb)
    return FFTResult(values=out.values, cost=machine.elapsed_since(start))
