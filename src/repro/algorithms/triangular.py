"""Distributed triangular solvers and the reusable LU factorisation.

Column-sweep substitution expressed in the primitives: each step reads one
scalar to the host (a charged bus read), then retires the unknown with one
``extract`` + masked axpy across the remaining rows — ``n`` steps of
``O(n/p_r)`` local work plus ``lg p`` rounds, the direct-solver complement
to :mod:`~repro.algorithms.gaussian`'s forward elimination.

:func:`lu_factor` / :func:`lu_solve` package the factorisation for reuse:
one elimination pays for arbitrarily many right-hand sides, with the
multipliers stored in the strict lower triangle (classic in-place LU) and
the row permutation carried alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, DistributedVector, iota
from .gaussian import SingularMatrixError
from ..errors import ConfigError, ShapeError


def _sweep(
    T: DistributedMatrix,
    b: np.ndarray,
    order: range,
    lower: bool,
    unit_diagonal: bool,
    tol: float,
) -> np.ndarray:
    """Shared column-sweep substitution engine.

    ``lower`` selects the sweep direction and which triangle of ``T`` is
    read; the masked axpy touches only rows whose unknowns are still
    pending, so a combined LU matrix works for both sweeps.
    """
    n = T.shape[0]
    machine = T.machine
    x = np.zeros(n)
    rhs = DistributedVector(
        T.extract(axis=1, index=0).embedding.scatter(np.asarray(b, float)),
        T.extract(axis=1, index=0).embedding,
    )
    row_iota = iota(rhs.embedding)
    for k in order:
        if unit_diagonal:
            xk = rhs.get_global(k)
        else:
            diag = T.get_global(k, k)
            if abs(diag) <= tol:
                raise SingularMatrixError(
                    f"zero diagonal at substitution step {k}"
                )
            xk = rhs.get_global(k) / diag
        x[k] = xk
        pending = (row_iota > k) if lower else (row_iota < k)
        colk = T.extract(axis=1, index=k)
        rhs = rhs - pending.where(colk, 0.0) * xk
    return x


def solve_lower(
    L: DistributedMatrix,
    b: np.ndarray,
    unit_diagonal: bool = False,
    tol: float = 1e-12,
) -> np.ndarray:
    """Forward substitution ``L x = b`` (strictly reads the lower triangle)."""
    n, n2 = L.shape
    if n != n2:
        raise ShapeError(f"L must be square, got {L.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    with L.machine.phase("forward-substitution"):
        return _sweep(L, b, range(n), lower=True,
                      unit_diagonal=unit_diagonal, tol=tol)


def solve_upper(
    U: DistributedMatrix,
    b: np.ndarray,
    tol: float = 1e-12,
) -> np.ndarray:
    """Backward substitution ``U x = b`` (strictly reads the upper triangle)."""
    n, n2 = U.shape
    if n != n2:
        raise ShapeError(f"U must be square, got {U.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    with U.machine.phase("backward-substitution"):
        return _sweep(U, b, range(n - 1, -1, -1), lower=False,
                      unit_diagonal=False, tol=tol)


@dataclass
class LUFactorization:
    """``P A = L U`` with L's multipliers packed below U in one matrix.

    ``swaps[k]`` is the row exchanged with row ``k`` at step ``k``
    (partial pivoting); apply them in order to permute a right-hand side.
    """

    combined: DistributedMatrix
    swaps: List[int]
    cost: Optional[CostSnapshot] = None

    @property
    def shape(self):
        return self.combined.shape

    def permute_rhs(self, b: np.ndarray) -> np.ndarray:
        out = np.asarray(b, dtype=np.float64).copy()
        for k, piv in enumerate(self.swaps):
            if piv != k:
                out[[k, piv]] = out[[piv, k]]
        return out

    def lower(self) -> np.ndarray:
        """Host-side L (unit diagonal) — diagnostic readout."""
        host = self.combined.to_numpy()
        return np.tril(host, -1) + np.eye(host.shape[0])

    def upper(self) -> np.ndarray:
        """Host-side U — diagnostic readout."""
        return np.triu(self.combined.to_numpy())


def lu_factor(
    A: DistributedMatrix,
    pivoting: str = "partial",
    tol: float = 1e-12,
) -> LUFactorization:
    """In-place LU with partial pivoting: ``P A = L U``.

    Unlike :func:`~repro.algorithms.gaussian.eliminate`, the elimination
    multipliers are *kept* (stored where the zeros would go), so the
    factorisation can be replayed against new right-hand sides with two
    triangular sweeps instead of a fresh ``O(n^3/p)`` elimination.
    """
    if pivoting not in ("partial", "none"):
        raise ConfigError(
            f"lu_factor supports 'partial' or 'none' pivoting, got {pivoting!r}"
        )
    n, n2 = A.shape
    if n != n2:
        raise ShapeError(f"A must be square, got {A.shape}")
    machine = A.machine
    T = type(A).from_numpy(machine, A.to_numpy())
    swaps: List[int] = []
    row_iota = None
    col_iota = None

    start = machine.snapshot()
    with machine.phase("lu-factor"):
        for k in range(n):
            with machine.phase("pivot-search"):
                col = T.extract(axis=1, index=k)
                if row_iota is None:
                    row_iota = iota(col.embedding)
                if pivoting == "partial":
                    pval, prow = abs(col).argreduce(
                        "max", valid=row_iota >= k
                    )
                    if prow < 0 or abs(pval) <= tol:
                        raise SingularMatrixError(
                            f"no pivot above tolerance at step {k}"
                        )
                else:
                    prow = k
                    if abs(col.get_global(k)) <= tol:
                        raise SingularMatrixError(f"zero diagonal at step {k}")
            swaps.append(int(prow))
            if prow != k:
                with machine.phase("row-swap"):
                    rk = T.extract(axis=0, index=k)
                    rp = T.extract(axis=0, index=int(prow))
                    T = T.insert(axis=0, index=k, vector=rp)
                    T = T.insert(axis=0, index=int(prow), vector=rk)

            with machine.phase("update"):
                pivot_row = T.extract(axis=0, index=k)
                if col_iota is None:
                    col_iota = iota(pivot_row.embedding)
                pivot_val = pivot_row.get_global(k)
                col = T.extract(axis=1, index=k)
                below = row_iota > k
                mults = below.where(col * (1.0 / pivot_val), 0.0)
                # update only the trailing columns: the rank-1 row factor is
                # masked to columns > k so L's column survives underneath
                trailing_row = (col_iota > k).where(pivot_row, 0.0)
                T = T.sub_outer(mults, trailing_row)
                # store the multipliers in column k below the diagonal
                packed = below.where(mults, T.extract(axis=1, index=k))
                T = T.insert(axis=1, index=k, vector=packed)
    return LUFactorization(
        combined=T, swaps=swaps, cost=machine.elapsed_since(start)
    )


def lu_solve(
    fact: LUFactorization,
    b: np.ndarray,
    tol: float = 1e-12,
) -> np.ndarray:
    """Solve ``A x = b`` from a prior :func:`lu_factor`.

    Permute ``b``, forward-sweep the unit-lower factor, backward-sweep the
    upper factor — ``O(n^2/p + n lg p)`` per right-hand side, no repeated
    elimination.
    """
    n = fact.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},)")
    machine = fact.combined.machine
    with machine.phase("lu-solve"):
        pb = fact.permute_rhs(b)
        y = solve_lower(fact.combined, pb, unit_diagonal=True, tol=tol)
        return solve_upper(fact.combined, y, tol=tol)
