"""Runtime machine sanitizer: conservation and accounting invariants.

The simulator's correctness claims are *accounting* claims — every charged
round must move exactly the elements it says it moves, counters must only
ever grow, embeddings must stay within the paper's ``⌈m/p⌉`` balance bound,
and the plan cache must replay bit-identical costs to the cold paths it
memoizes.  None of that is visible to value-level tests: a mis-charged
round still produces the right numbers.  The :class:`MachineSanitizer`
audits the books *while they are written*.

Design (same contract as :class:`repro.obs.Tracer`, pinned by
``tests/test_sanitizer.py``):

* **Null by default.**  ``machine.sanitizer`` is ``None`` unless attached;
  every instrumented site pays one ``is None`` branch and charges nothing,
  so cost totals are bit-identical sanitized or not.
* **Read-only.**  The sanitizer never charges the machine, never touches
  the plan cache, and never mutates data; it observes snapshots and
  recomputes expectations from specifications.
* **Fail fast.**  The first violated invariant raises
  :class:`~repro.errors.SanitizerError` naming the invariant and the
  expected/observed quantities; ``stats`` counts every check that ran.

Invariants audited per hook:

===================  ========================================================
hook                 invariant
===================  ========================================================
``observe``          counters non-negative and monotonically non-decreasing
``audit_comm_round`` charged elements == volume·p·rounds, charged rounds ==
                     rounds, charged time == rounds·comm_round(volume)
                     (bit-exact; lower bounds under faults, which surcharge)
``audit_exchange``   every processor received exactly its neighbour's block
``audit_route``      element hops == Σ sizes·(dims corrected) (bit-exact on
                     a healthy machine; ≥ under detours), rounds consistent
                     with the per-dimension congestion profile
``audit_charge_route`` a replayed plan charged exactly its recorded stats
``on_plan_store``/   a cache hit returns a payload bit-identical to what was
``on_plan_hit``      stored, under the *current* topology epoch
``audit_broadcast``  result equals the root's block per a cache-independent
                     root map (catches stale collective plans)
``audit_replicated`` after an all-reduce, subcube members hold identical
                     blocks (sound: all combine ops are commutative)
``audit_vector_embedding`` / ``audit_matrix_embedding``
                     every element placed exactly once (≥ once when
                     replicated) and per-processor load within the paper's
                     ``⌈m/p⌉`` bound
``audit_abft_panels`` stored checksum panels match a from-scratch
                     recomputation of the protected block's byte image
``on_epoch_bump``    topology epochs strictly increase
===================  ========================================================
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, SanitizerError
from ..machine.counters import CostSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..machine.hypercube import Hypercube

#: Environment variable that turns the sanitizer on for new ``Session``s.
ENV_FLAG = "REPRO_SANITIZE"

#: Environment variable selecting the per-round sampling stride ``K``
#: (``Session(sanitize=True)`` audits every ``K``-th charged round).
ENV_SAMPLE = "REPRO_SANITIZE_SAMPLE"

#: Counter fields audited for monotonicity (all charges accumulate).
_MONOTONIC_FIELDS = (
    "time",
    "flops",
    "elements_transferred",
    "comm_rounds",
    "local_moves",
)


def env_enabled() -> bool:
    """The process-wide default from ``REPRO_SANITIZE`` (default: off)."""
    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


def env_sample_every() -> int:
    """The sampling stride from ``REPRO_SANITIZE_SAMPLE`` (default: 1)."""
    raw = os.environ.get(ENV_SAMPLE, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{ENV_SAMPLE} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{ENV_SAMPLE} must be >= 1, got {value}")
    return value


def _time_slack(base: float, expected: float) -> float:
    """ULP-scale slack for time deltas reconstructed from a large counter.

    Gray-fault surcharges (lockstep stretch, jittered backoff) add
    non-dyadic fractions to the accumulated time counter, so a later
    ``(time + charge) - time`` reconstruction can land a few ULPs off the
    exact charge even when the charge itself was honest.  The slack is
    relative (1e-9) to the counter magnitude — around nine orders of
    magnitude below any real mischarge, which is whole cost-model terms.
    """
    return 1e-9 * max(abs(base), abs(expected), 1.0)


def _array_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality, treating NaN as equal to itself (floats only)."""
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if a.dtype.kind in "fc":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _fingerprint(value: Any) -> Tuple:
    """A hashable bit-identity of a cached plan payload.

    Covers every payload type the plan cache stores today (route stats,
    remap plans, lookup-table arrays and tuples thereof); unknown types
    degrade to their type name, which still pins payload *kind* stability.
    """
    from ..machine.plans import RemapPlan
    from ..machine.router import RouteStats

    if isinstance(value, RouteStats):
        return (
            "route-stats",
            value.rounds,
            value.element_hops,
            value.max_congestion,
            value.time,
            value.dim_congestion,
        )
    if isinstance(value, RemapPlan):
        return (
            "remap-plan",
            value.src_local,
            value.dst_local,
            _fingerprint(value.route) if value.route is not None else None,
        )
    if isinstance(value, np.ndarray):
        return ("array", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, tuple):
        return ("tuple",) + tuple(_fingerprint(v) for v in value)
    return ("opaque", type(value).__name__)


@dataclass
class SanitizerStats:
    """How many checks of each kind ran (all of them passed, or we raised)."""

    checks: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.checks[kind] = self.checks.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.checks.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self.checks, total=self.total)


class MachineSanitizer:
    """Audits one machine's cost accounting and data conservation.

    Attach with :meth:`Hypercube.attach_sanitizer` (or
    ``Session(sanitize=True)``, or ``REPRO_SANITIZE=1``) *before* running
    the workload.  The sanitizer survives degraded-mode recovery: the
    session rebinds it to the survivor subcube, and because the subcube
    charges into the same counters the monotonicity audit spans the swap.

    Parameters
    ----------
    sample_every:
        Audit every ``K``-th charged communication round instead of every
        one (``--sample-every K`` on the CLI, ``REPRO_SANITIZE_SAMPLE``
        for sessions).  The per-round hooks — counter monotonicity, round
        accounting, exchange conservation — are the wall-clock hot path
        (see the phase profiler's ``sanitizer-checks`` row); sampling
        trades detection latency for speed.  Structural hooks (routes,
        plans, collectives, embeddings, checksum panels) always run.
        ``K=1`` (the default) is bit-identical to the unsampled sanitizer,
        pinned by ``tests/test_sanitizer.py``.
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ConfigError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.machine: Optional["Hypercube"] = None
        self.stats = SanitizerStats()
        self.sample_every = int(sample_every)
        self._site_index = 0
        self._last: Optional[CostSnapshot] = None
        self._plan_prints: Dict[Any, Tuple] = {}

    def _sampled(self) -> bool:
        """Advance the sampling clock; True on every ``K``-th call."""
        if self.sample_every == 1:
            return True
        self._site_index += 1
        if self._site_index >= self.sample_every:
            self._site_index = 0
            return True
        return False

    # -- binding --------------------------------------------------------------

    def bind(self, machine: "Hypercube") -> None:
        if self.machine is not None and self.machine is not machine:
            raise SanitizerError(
                "sanitizer is already bound to a different machine"
            )
        self.machine = machine
        self._last = machine.counters.snapshot()

    def rebind(self, machine: "Hypercube") -> None:
        """Re-bind to a replacement machine (degraded-mode recovery).

        The survivor charges into the parent's counters, so ``_last``
        deliberately carries over: simulated time must keep rising across
        the swap.  Plan fingerprints also carry over — the new machine has
        a fresh cache, so stale keys simply never hit.
        """
        self.machine = machine

    def resync(self) -> None:
        """Re-baseline after an explicit counter reset.

        A deliberate ``reset_counters()`` rewinds the clock; without a
        resync the next charge would (correctly, but unhelpfully) trip
        the monotonicity audit.
        """
        if self.machine is not None:
            self._last = self.machine.counters.snapshot()

    # -- failure --------------------------------------------------------------

    def _fail(self, invariant: str, detail: str) -> None:
        machine = self.machine
        where = (
            f"p={machine.p}, epoch={machine.epoch}, "
            f"time={machine.counters.time}"
            if machine is not None
            else "unbound"
        )
        raise SanitizerError(
            f"machine invariant violated [{invariant}]: {detail} ({where})"
        )

    # -- counters -------------------------------------------------------------

    def observe(
        self, machine: "Hypercube", sampled: bool = True
    ) -> Optional[CostSnapshot]:
        """Audit counter monotonicity/non-negativity; returns the snapshot.

        ``sampled=False`` is a complete no-op: no snapshot is taken and
        ``_last`` does not advance.  That is sound — counters only ever
        grow, so a later sampled check against an *older* baseline audits
        a superset of the skipped interval — and it is what makes
        ``sample_every`` actually pay: the snapshot itself is the
        per-round hot path, not just the comparisons.
        """
        if not sampled:
            return None
        snap = machine.counters.snapshot()
        self.stats.count("counters")
        last = self._last
        for name in _MONOTONIC_FIELDS:
            value = getattr(snap, name)
            if value < 0:
                self._fail(
                    "counters-nonneg", f"{name} is negative: {value}"
                )
            if last is not None and value < getattr(last, name):
                self._fail(
                    "counters-monotonic",
                    f"{name} decreased: {getattr(last, name)} -> {value}",
                )
        self._last = snap
        return snap

    def observe_charge(self, machine: "Hypercube") -> None:
        """Sampled counter audit at a charge site (flops / local moves).

        The machine calls this on every ``charge_flops``/``charge_local``;
        under ``sample_every=K`` only every ``K``-th call snapshots and
        audits, the rest cost one method call and a counter increment.
        Counters and results stay bit-identical across ``K`` — the
        sanitizer never charges — pinned by ``tests/test_sanitizer.py``.
        """
        if self._sampled():
            self.observe(machine)

    # -- charged communication rounds -----------------------------------------

    def audit_comm_round(
        self,
        machine: "Hypercube",
        volume: float,
        rounds: int,
        dim: Optional[int],
        before: CostSnapshot,
    ) -> None:
        """One ``charge_comm_round`` call: the books must balance exactly.

        On a healthy machine the charge is exact; with faults attached the
        base charge is a floor (detours and retries surcharge extra rounds
        of the same honest accounting on top).
        """
        if not self._sampled():
            return
        after = self.observe(machine)
        self.stats.count("comm-round")
        d_elem = after.elements_transferred - before.elements_transferred
        d_rounds = after.comm_rounds - before.comm_rounds
        d_time = after.time - before.time
        exp_elem = volume * machine.p * rounds
        exp_time = rounds * machine.cost_model.comm_round(volume)
        where = f"dim={dim}, volume={volume}, rounds={rounds}"
        healthy = (
            machine.faults is None
            and machine.node_ok is None
            and machine.link_ok is None
            and not machine.gray_active
        )
        if healthy:
            if d_elem != exp_elem:
                self._fail(
                    "round-conservation",
                    f"{where}: charged {d_elem} elements, expected {exp_elem}"
                    " (sent != received)",
                )
            if d_rounds != rounds:
                self._fail(
                    "round-count",
                    f"{where}: charged {d_rounds} rounds, expected {rounds}",
                )
            if d_time != exp_time:
                self._fail(
                    "round-time",
                    f"{where}: charged {d_time} ticks, expected {exp_time}",
                )
        else:
            if d_elem < exp_elem:
                self._fail(
                    "round-conservation",
                    f"{where}: charged {d_elem} elements under faults, "
                    f"below the {exp_elem} floor",
                )
            if d_rounds < rounds:
                self._fail(
                    "round-count",
                    f"{where}: charged {d_rounds} rounds under faults, "
                    f"below the {rounds} floor",
                )
            if d_time < exp_time - _time_slack(after.time, exp_time):
                self._fail(
                    "round-time",
                    f"{where}: charged {d_time} ticks under faults, "
                    f"below the {exp_time} floor",
                )

    def audit_exchange(
        self,
        machine: "Hypercube",
        sent: Any,
        received: Any,
        dim: int,
    ) -> None:
        """A structured exchange delivered exactly the neighbours' blocks."""
        if not self._sampled():
            return
        self.stats.count("exchange")
        expected = sent.data[machine._neighbor[dim]]
        if not _array_equal(np.asarray(received.data), np.asarray(expected)):
            self._fail(
                "exchange-conservation",
                f"exchange along dim {dim} did not deliver each "
                f"processor its neighbour's block",
            )

    # -- routing ---------------------------------------------------------------

    def audit_route(
        self,
        machine: "Hypercube",
        src: np.ndarray,
        dst: np.ndarray,
        sizes: np.ndarray,
        stats: Any,
        before: Optional[CostSnapshot],
        from_cache: bool,
    ) -> None:
        """An e-cube route conserved its traffic and charged what it did.

        ``element_hops`` must equal the per-dimension moving volumes summed
        in routing order (bit-exact on a healthy machine; a faulted machine
        only adds detour hops, so the direct total is a floor).  When the
        route charged (``before`` is a snapshot), the charge must equal the
        stats record exactly — the same floats whether cold or replayed.
        """
        self.stats.count("route")
        kind = "route-replay" if from_cache else "route"
        direct = 0.0
        diff = src ^ dst
        for d in range(machine.n):
            moving = (diff >> d) & 1 != 0
            if np.any(moving):
                direct += float(sizes[moving].sum())
        # Dead links detour (extra hops); gray state or lingering health
        # suspicion can trigger straggler-avoidance detours too — in all
        # three cases the direct e-cube totals are floors, not equalities.
        health = getattr(machine.faults, "health", None)
        degraded = (
            machine.faulty
            or machine.gray_active
            or (health is not None and health.tracked > 0)
        )
        if degraded:
            if stats.element_hops < direct:
                self._fail(
                    f"{kind}-conservation",
                    f"element hops {stats.element_hops} below the direct "
                    f"e-cube total {direct} (messages lost)",
                )
        elif stats.element_hops != direct:
            self._fail(
                f"{kind}-conservation",
                f"element hops {stats.element_hops} != direct e-cube "
                f"total {direct} (sent != received)",
            )
        if stats.rounds != len(stats.dim_congestion):
            self._fail(
                f"{kind}-rounds",
                f"{stats.rounds} rounds but {len(stats.dim_congestion)} "
                f"per-dimension congestion entries",
            )
        if not degraded and stats.rounds > machine.n:
            self._fail(
                f"{kind}-rounds",
                f"{stats.rounds} rounds on a healthy n={machine.n} cube "
                f"(e-cube needs at most one per dimension)",
            )
        if before is not None:
            after = self.observe(machine)
            d_elem = after.elements_transferred - before.elements_transferred
            d_rounds = after.comm_rounds - before.comm_rounds
            d_time = after.time - before.time
            if (
                d_elem != stats.element_hops
                or d_rounds != stats.rounds
                or abs(d_time - stats.time)
                > _time_slack(after.time, stats.time)
            ):
                self._fail(
                    f"{kind}-charge",
                    f"charged (elements={d_elem}, rounds={d_rounds}, "
                    f"time={d_time}) != stats (elements="
                    f"{stats.element_hops}, rounds={stats.rounds}, "
                    f"time={stats.time})",
                )

    def audit_charge_route(
        self,
        machine: "Hypercube",
        stats: Any,
        before: CostSnapshot,
    ) -> None:
        """A plan replay (``plans.charge_route``) charged its stats exactly."""
        after = self.observe(machine)
        self.stats.count("route-replay-charge")
        d_elem = after.elements_transferred - before.elements_transferred
        d_rounds = after.comm_rounds - before.comm_rounds
        d_time = after.time - before.time
        if (
            d_elem != stats.element_hops
            or d_rounds != stats.rounds
            or abs(d_time - stats.time) > _time_slack(after.time, stats.time)
        ):
            self._fail(
                "plan-replay-charge",
                f"replayed plan charged (elements={d_elem}, "
                f"rounds={d_rounds}, time={d_time}) but its stats record "
                f"(elements={stats.element_hops}, rounds={stats.rounds}, "
                f"time={stats.time})",
            )

    # -- plan cache -------------------------------------------------------------

    def on_plan_store(self, machine: "Hypercube", key: Any, value: Any) -> None:
        """Record the bit-identity of a stored plan under its epoch key."""
        self.stats.count("plan-store")
        epoch = key[0] if isinstance(key, tuple) and key else None
        if epoch != machine.epoch:
            self._fail(
                "plan-epoch",
                f"plan stored under epoch {epoch} but the machine is at "
                f"epoch {machine.epoch}",
            )
        self._plan_prints[key] = _fingerprint(value)

    def on_plan_hit(self, machine: "Hypercube", key: Any, value: Any) -> None:
        """A hit must replay, bit-identically, what was stored — now."""
        self.stats.count("plan-hit")
        epoch = key[0] if isinstance(key, tuple) and key else None
        if epoch != machine.epoch:
            self._fail(
                "plan-epoch",
                f"plan hit under epoch {epoch} but the machine is at epoch "
                f"{machine.epoch} (stale plan replayed across a topology "
                f"change)",
            )
        stored = self._plan_prints.get(key)
        if stored is None:
            # Stored before the sanitizer attached; adopt it from here on.
            self._plan_prints[key] = _fingerprint(value)
            return
        if _fingerprint(value) != stored:
            self._fail(
                "plan-identity",
                "plan cache returned a payload that is not bit-identical "
                "to what was stored under the same key",
            )

    # -- collectives -------------------------------------------------------------

    def audit_broadcast(
        self,
        machine: "Hypercube",
        dims: Tuple[int, ...],
        root_rank: int,
        sent: Any,
        received: Any,
    ) -> None:
        """Every subcube member ended with the root's block.

        The root map is recomputed here from first principles (never via
        the plan cache), so a stale or corrupted cached collective plan
        diverges from this oracle and is caught.
        """
        self.stats.count("broadcast")
        mask = 0
        for d in dims:
            mask |= 1 << d
        root = machine.pids() & ~np.int64(mask)
        for j, d in enumerate(dims):
            if (root_rank >> j) & 1:
                root = root | np.int64(1 << d)
        expected = sent.data[root]
        if not _array_equal(np.asarray(received.data), np.asarray(expected)):
            self._fail(
                "broadcast-root",
                f"broadcast over dims {list(dims)} (root_rank {root_rank}) "
                f"did not deliver the root's block to every member",
            )

    def audit_replicated(
        self,
        machine: "Hypercube",
        pvar: Any,
        dims: Tuple[int, ...],
        what: str,
    ) -> None:
        """All members of each ``dims``-subcube hold identical blocks.

        Sound for every built-in combine op: they are all commutative, and
        commutativity alone makes the dimension-exchange partials
        bit-identical across partners at every round.
        """
        self.stats.count("replicated")
        mask = 0
        for d in dims:
            mask |= 1 << d
        base = machine.pids() & ~np.int64(mask)
        data = np.asarray(pvar.data)
        if not _array_equal(data, data[base]):
            self._fail(
                "replication",
                f"{what} over dims {list(dims)} left subcube members with "
                f"differing blocks",
            )

    # -- embeddings --------------------------------------------------------------

    def audit_vector_embedding(self, emb: Any) -> None:
        """The paper's balance bound: no processor holds more than ⌈m/p⌉.

        Also conservation: every global index is placed exactly once
        (at least once for replicated embeddings).
        """
        self.stats.count("embedding")
        machine = emb.machine
        mask = np.asarray(emb.valid_mask())
        idx = np.asarray(emb.global_indices())
        per_pid = mask.reshape(machine.p, -1).sum(axis=1)
        copies = np.bincount(idx[mask].ravel(), minlength=emb.L)
        order_dims = emb.order_dims
        holders = 1 << len(order_dims)
        bound = math.ceil(emb.L / holders)
        if per_pid.max(initial=0) > bound:
            self._fail(
                "embedding-balance",
                f"{emb!r}: a processor holds {int(per_pid.max())} elements, "
                f"above the ⌈m/p⌉ bound {bound}",
            )
        if emb.replicated:
            if copies.min(initial=1) < 1:
                missing = int(np.argmin(copies))
                self._fail(
                    "embedding-conservation",
                    f"{emb!r}: global index {missing} is placed nowhere",
                )
        elif not bool(np.all(copies == 1)):
            bad = int(np.argmax(copies != 1))
            self._fail(
                "embedding-conservation",
                f"{emb!r}: global index {bad} is placed {int(copies[bad])} "
                f"times (each element must live exactly once)",
            )

    def audit_matrix_embedding(self, emb: Any) -> None:
        """Grid balance: local blocks within ⌈R/Pr⌉×⌈C/Pc⌉, all elements placed."""
        self.stats.count("embedding")
        machine = emb.machine
        mask = np.asarray(emb.valid_mask())
        per_pid = mask.reshape(machine.p, -1).sum(axis=1)
        bound = math.ceil(emb.R / emb.Pr) * math.ceil(emb.C / emb.Pc)
        if per_pid.max(initial=0) > bound:
            self._fail(
                "embedding-balance",
                f"{emb!r}: a processor holds {int(per_pid.max())} elements, "
                f"above the ⌈R/Pr⌉·⌈C/Pc⌉ bound {bound}",
            )
        total = int(per_pid.sum())
        if total != emb.R * emb.C:
            self._fail(
                "embedding-conservation",
                f"{emb!r}: {total} elements placed, expected "
                f"{emb.R * emb.C}",
            )

    # -- checksums ---------------------------------------------------------------

    def audit_abft_panels(
        self, machine: "Hypercube", pvar: Any, panels: Tuple
    ) -> None:
        """Freshly computed checksum panels actually describe the block.

        Called by the ABFT manager at protection time: the stored reference
        panels must match a from-scratch recomputation over the block's
        byte image, and their shapes must match the machine and block.  A
        broken panel builder would otherwise make every later verification
        of this block vacuous (or a false alarm).
        """
        self.stats.count("abft-panels")
        from ..abft.panels import checksum_panels

        col, row = panels
        expect_col, expect_row = checksum_panels(pvar.data)
        if col.shape != (machine.p,) or row.shape != expect_row.shape:
            self._fail(
                "abft-panel-shape",
                f"panels shaped {col.shape}/{row.shape}, expected "
                f"({machine.p},)/{expect_row.shape}",
            )
        if not np.array_equal(col, expect_col) or not np.array_equal(
            row, expect_row
        ):
            self._fail(
                "abft-panel-identity",
                "stored checksum panels do not match a recomputation over "
                "the protected block's byte image",
            )

    # -- metrics publication -----------------------------------------------------

    def publish_metrics(self, registry: Any) -> None:
        """Publish check counts into a metrics registry (read-only)."""
        registry.publish("sanitizer.checks", self.stats.total,
                         help="total sanitizer checks run")
        registry.publish("sanitizer.sample_every", self.sample_every,
                         kind="gauge")
        for kind, count in sorted(self.stats.checks.items()):
            registry.publish(
                f"sanitizer.checks.{kind.replace('-', '_')}", count
            )

    # -- topology ---------------------------------------------------------------

    def on_epoch_bump(self, machine: "Hypercube", old_epoch: int) -> None:
        """Topology epochs move strictly forward, one fault at a time."""
        self.stats.count("epoch")
        if machine.epoch <= old_epoch:
            self._fail(
                "epoch-monotonic",
                f"epoch went {old_epoch} -> {machine.epoch} after a "
                f"permanent fault (must strictly increase)",
            )


__all__ = [
    "MachineSanitizer",
    "SanitizerStats",
    "env_enabled",
    "env_sample_every",
    "ENV_FLAG",
    "ENV_SAMPLE",
]
