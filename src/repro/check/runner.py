"""The ``python -m repro check`` conformance runner.

Assembles the three layers of :mod:`repro.check` into one JSON report:

1. **sanitizer self-test** — a deliberately mis-charging machine double
   must be caught (proves the harness can actually fail);
2. **sanitized differential sweep** — every oracle case vs its serial
   reference across the configuration matrix, sanitizer attached;
3. **golden cost snapshots** — the pinned tier-1 counters must replay
   exactly, sanitizer off and on.

:func:`run_check` returns ``(report, passed)``; the CLI exits nonzero on
any violation so CI can gate on it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

from ..errors import SanitizerError
from . import golden as golden_mod
from .oracle import run_differential
from .sanitizer import MachineSanitizer


def sanitizer_selftest() -> dict:
    """The sanitizer must catch a machine that cooks its books.

    Two doubles: one under-charges time (drops the per-round start-up),
    one loses an element per round.  Both must raise
    :class:`~repro.errors.SanitizerError`; a healthy machine running the
    same operations must not.
    """
    from ..machine.hypercube import Hypercube

    class _DropsStartup(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            self.counters.charge_transfer(volume * self.p * rounds, rounds, 0.0)

    class _LosesElements(Hypercube):
        def _charge_comm_round_plain(self, volume, rounds=1, dim=None):
            time = self.cost_model.comm_round(volume)
            self.counters.charge_transfer(
                volume * self.p * rounds - 1.0, rounds, rounds * time
            )

    outcomes = {}
    for label, cls in (
        ("undercharged_time", _DropsStartup),
        ("lost_elements", _LosesElements),
    ):
        machine = cls(3)
        machine.attach_sanitizer(MachineSanitizer())
        try:
            machine.charge_comm_round(4.0, dim=1)
            outcomes[label] = {"caught": False}
        except SanitizerError as exc:
            outcomes[label] = {"caught": True, "error": str(exc)}

    healthy = Hypercube(3)
    healthy.attach_sanitizer(MachineSanitizer())
    try:
        healthy.charge_comm_round(4.0, dim=1)
        outcomes["honest_machine"] = {"caught": False}
    except SanitizerError as exc:  # pragma: no cover - would be a bug
        outcomes["honest_machine"] = {"caught": True, "error": str(exc)}

    passed = (
        outcomes["undercharged_time"]["caught"]
        and outcomes["lost_elements"]["caught"]
        and not outcomes["honest_machine"]["caught"]
    )
    return {"passed": passed, "outcomes": outcomes}


def run_check(
    seed: int = 0,
    n_dims: int = 4,
    quick: bool = False,
    golden_path: Optional[Path] = None,
    skip_differential: bool = False,
    skip_golden: bool = False,
) -> Tuple[dict, bool]:
    """Run the full conformance suite; returns ``(report, passed)``."""
    golden_path = (
        golden_mod.GOLDEN_PATH if golden_path is None else Path(golden_path)
    )
    report: dict = {"seed": seed, "n_dims": n_dims, "quick": quick}

    selftest = sanitizer_selftest()
    report["sanitizer_selftest"] = selftest
    passed = selftest["passed"]

    if not skip_differential:
        differential = run_differential(seed=seed, n_dims=n_dims, quick=quick)
        report["differential"] = differential
        passed = passed and differential["passed"]

    if not skip_golden:
        if golden_path.exists():
            golden_ok, mismatches = golden_mod.compare_golden(golden_path)
            report["golden"] = {
                "passed": golden_ok,
                "path": str(golden_path),
                "mismatches": mismatches,
            }
            passed = passed and golden_ok
        else:
            report["golden"] = {
                "passed": False,
                "path": str(golden_path),
                "mismatches": [],
                "error": "golden snapshot file missing; run --update-golden",
            }
            passed = False

    report["passed"] = passed
    return report, passed


__all__ = ["run_check", "sanitizer_selftest"]
