"""Golden cost snapshots: tier-1 workload counters pinned in-repo.

The simulator's whole claim to faithfulness is its cost accounting, so the
exact counters of fixed tier-1 workloads — Gaussian elimination, simplex,
and repeated matvec, each on a fixed seed and machine, plus ABFT-on
variants of gaussian and matvec pinning the checksum layer's overhead —
are pinned in ``golden_costs.json`` next to this module.  Any change to tick /
flop / transfer accounting shows up as an explicit diff of that file,
reviewed like any other behavioural change, instead of drifting silently.

The snapshots double as the seed-counter pin: they were captured with the
sanitizer *off* on the seed tree, and the conformance runner replays the
workloads (sanitizer off, then on) to verify both that accounting is
unchanged and that the sanitizer's presence does not perturb it.

Update after an intentional accounting change with::

    python -m repro check --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.session import Session
from .. import workloads

#: The pinned snapshot file, versioned with the code it describes.
GOLDEN_PATH = Path(__file__).with_name("golden_costs.json")

#: Counter fields pinned per workload (exact float equality).
FIELDS = (
    "time",
    "flops",
    "elements_transferred",
    "comm_rounds",
    "local_moves",
)

#: Machine shape shared by all golden workloads.
N_DIMS = 6
COST_MODEL = "cm2"


def _gaussian(session: Session) -> None:
    from ..algorithms import gaussian

    A, b, _ = workloads.diagonally_dominant_system(24, 11)
    gaussian.solve(session.matrix(A), b)


def _simplex(session: Session) -> None:
    from ..algorithms import simplex

    lp = workloads.feasible_lp(8, 12, 5)
    simplex.solve(session.machine, lp.A, lp.b, lp.c)


def _matvec(session: Session) -> None:
    from ..algorithms import matvec

    rng = np.random.default_rng(3)
    A = rng.standard_normal((24, 17))
    x = rng.standard_normal(17)
    dA = session.matrix(A)
    for _ in range(4):
        matvec.matvec(dA, session.row_vector(x, dA))


def _bfs(session: Session) -> None:
    # Pins the sparse subsystem's accounting: nnz-balanced embedding,
    # routed frontier exchanges, and the charged convergence reduction.
    from ..algorithms import graph

    g = workloads.random_graph(48, 3.0, seed=7)
    graph.bfs(session, g, 0)


WORKLOADS: Dict[str, Callable[[Session], None]] = {
    "gaussian": _gaussian,
    "simplex": _simplex,
    "matvec": _matvec,
    "gaussian_abft": _gaussian,
    "matvec_abft": _matvec,
    "bfs": _bfs,
}

#: Extra Session keyword arguments per workload.  The ``*_abft`` entries
#: pin the checksum layer's overhead: protect/guard charges land on the
#: same simulated clock, so ABFT cost drift diffs this file too.
SESSION_OPTS: Dict[str, Dict[str, object]] = {
    "gaussian_abft": {"abft": True},
    "matvec_abft": {"abft": True},
}


def _run_one(name: str, sanitize: bool) -> Dict[str, float]:
    session = Session(
        N_DIMS,
        cost_model=COST_MODEL,
        plan_cache=True,
        sanitize=sanitize,
        **SESSION_OPTS.get(name, {}),
    )
    WORKLOADS[name](session)
    counters = session.machine.counters
    return {f: getattr(counters, f) for f in FIELDS}


def collect_golden(sanitize: bool = False) -> dict:
    """Run every golden workload and collect its counters."""
    return {
        "n_dims": N_DIMS,
        "cost_model": COST_MODEL,
        "fields": list(FIELDS),
        "workloads": {name: _run_one(name, sanitize) for name in WORKLOADS},
    }


def load_golden(path: Optional[Path] = None) -> dict:
    with open(GOLDEN_PATH if path is None else path) as fh:
        return json.load(fh)


def update_golden(path: Optional[Path] = None) -> dict:
    """Re-capture the snapshots (sanitizer off, like the seed capture)."""
    data = collect_golden(sanitize=False)
    with open(GOLDEN_PATH if path is None else path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def compare_golden(path: Optional[Path] = None) -> Tuple[bool, list]:
    """Replay every workload twice (sanitizer off and on) vs the pin.

    Returns ``(passed, mismatches)`` where each mismatch names the
    workload, the sanitizer state, the field and both values.  Exact float
    comparison: cached charges and memoized rates are bit-stable, so any
    inequality is a real accounting change.
    """
    golden = load_golden(GOLDEN_PATH if path is None else path)
    mismatches = []
    for name, want in golden["workloads"].items():
        for sanitize in (False, True):
            got = _run_one(name, sanitize)
            for field in golden["fields"]:
                if got[field] != want[field]:
                    mismatches.append(
                        {
                            "workload": name,
                            "sanitize": sanitize,
                            "field": field,
                            "expected": want[field],
                            "observed": got[field],
                        }
                    )
    return not mismatches, mismatches


__all__ = [
    "GOLDEN_PATH",
    "FIELDS",
    "SESSION_OPTS",
    "WORKLOADS",
    "collect_golden",
    "compare_golden",
    "load_golden",
    "update_golden",
]
