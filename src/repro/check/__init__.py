"""Conformance checking: runtime sanitizer + differential oracle harness.

Three layers, all opt-in (an unchecked run never pays for them):

* :class:`MachineSanitizer` (``sanitizer.py``) — audits conservation and
  accounting invariants at every charged operation of one machine.
  Enable per session with ``Session(sanitize=True)`` or process-wide with
  ``REPRO_SANITIZE=1``.
* the differential oracle registry (``oracle.py``) — runs every algorithm
  against its serial/NumPy reference across a seeded matrix of machine
  configurations (cost models × plan cache × tracing × fault recovery).
* golden cost snapshots (``golden.py``) — tier-1 workload counters pinned
  in-repo, so any change to tick/flop/transfer accounting is an explicit,
  reviewed diff.

``python -m repro check`` runs all three and emits a JSON conformance
report (nonzero exit on any violation); see ``docs/testing.md``.
"""

from .sanitizer import (
    ENV_FLAG,
    ENV_SAMPLE,
    MachineSanitizer,
    SanitizerStats,
    env_enabled,
    env_sample_every,
)

__all__ = [
    "ENV_FLAG",
    "ENV_SAMPLE",
    "MachineSanitizer",
    "SanitizerStats",
    "env_enabled",
    "env_sample_every",
]
