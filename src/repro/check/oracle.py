"""Differential oracle registry: every algorithm vs its serial reference.

Each :class:`OracleCase` builds one deterministic problem instance from a
seed, solves it with the distributed algorithm on a given
:class:`~repro.core.session.Session`, solves the same instance with the
``repro.algorithms.serial`` / NumPy reference, and reports the divergence.
:func:`run_differential` sweeps every case across a matrix of machine
configurations (cost models × plan cache on/off × tracing on/off), always
with the :class:`~repro.check.MachineSanitizer` attached, plus
fault-recovery and silent-data-corruption (ABFT) axes for the tier-1
workloads — so a regression that only
bites with, say, the plan cache off and tracing on is reported with the
offending configuration attached.

Problem sizes are deliberately small (``n_dims=4`` by default, 16
processors): the oracle checks *semantics*, not scale, and the whole sweep
must stay fast enough to run in CI on every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.session import Session
from .. import workloads


@dataclass(frozen=True)
class OracleCase:
    """One algorithm, its reference, and the comparison contract.

    ``run(session, seed)`` returns ``(got, want)`` as host arrays computed
    from the *same* seeded instance.  ``exact`` cases must match
    bit-for-bit (integer outputs, order-only transforms); the rest compare
    within ``tol`` (absolute + relative, via ``np.allclose``).
    """

    name: str
    run: Callable[[Session, int], Tuple[np.ndarray, np.ndarray]]
    exact: bool = False
    tol: float = 1e-8


@dataclass
class CaseResult:
    """The outcome of one (case, configuration) cell."""

    case: str
    config: Dict[str, object]
    passed: bool
    max_error: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "case": self.case,
            "config": self.config,
            "passed": self.passed,
            "max_error": self.max_error,
            "detail": self.detail,
        }


# -- case implementations -------------------------------------------------------


def _matvec_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import matvec, serial

    rng = np.random.default_rng(seed)
    A = rng.standard_normal((12, 9))
    x = rng.standard_normal(9)
    dA = session.matrix(A)
    got = matvec.matvec(dA, session.row_vector(x, dA)).y.to_numpy()
    return got, serial.matvec(A, x).value


def _vecmat_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import matvec, serial

    rng = np.random.default_rng(seed)
    A = rng.standard_normal((11, 13))
    x = rng.standard_normal(11)
    dA = session.matrix(A)
    got = matvec.vecmat(session.col_vector(x, dA), dA).y.to_numpy()
    return got, serial.vecmat(x, A).value


def _gaussian_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import gaussian

    A, b, _ = workloads.diagonally_dominant_system(14, seed)
    got = gaussian.solve(session.matrix(A), b).x
    return got, np.linalg.solve(A, b)


def _simplex_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import serial, simplex

    lp = workloads.feasible_lp(6, 9, seed)
    res = simplex.solve(session.machine, lp.A, lp.b, lp.c)
    status, objective, x, iterations, _ = serial.simplex_solve(lp.A, lp.b, lp.c)
    # Same pivot rules on both sides, so statuses, iteration counts and
    # iterates all agree; fold everything into one comparison vector.
    got = np.concatenate(
        [[float(res.status == status), res.objective, res.iterations], res.x]
    )
    want = np.concatenate([[1.0, objective, iterations], x])
    return got, want


def _fft_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import fft

    rng = np.random.default_rng(seed)
    values = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    got = fft.fft(session.machine, values).values
    return got, np.fft.fft(values)


def _sort_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import sort

    rng = np.random.default_rng(seed)
    values = rng.standard_normal(37)
    res = sort.bitonic_sort(session.vector(values))
    return res.values.to_numpy(), np.sort(values)


def _histogram_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import histogram

    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, 50)
    res = histogram.histogram(
        session.vector(values), bins=8, value_range=(0.0, 1.0)
    )
    want, _ = np.histogram(values, bins=8, range=(0.0, 1.0))
    return res.counts, want


def _qr_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import qr

    rng = np.random.default_rng(seed)
    A = rng.standard_normal((12, 7))
    b = rng.standard_normal(12)
    got = qr.qr_solve(session.matrix(A), b)
    want, *_ = np.linalg.lstsq(A, b, rcond=None)
    return got, want


def _tridiagonal_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import tridiagonal

    rng = np.random.default_rng(seed)
    n = 21
    a = rng.uniform(-1.0, 1.0, n)
    c = rng.uniform(-1.0, 1.0, n)
    b = np.abs(a) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    d = rng.standard_normal(n)
    a[0] = c[-1] = 0.0
    got = tridiagonal.solve(session.machine, a, b, c, d).x
    T = np.diag(b) + np.diag(a[1:], -1) + np.diag(c[:-1], 1)
    return got, np.linalg.solve(T, d)


def _lu_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import triangular

    A, b, _ = workloads.diagonally_dominant_system(13, seed)
    fact = triangular.lu_factor(session.matrix(A))
    got = triangular.lu_solve(fact, b)
    return got, np.linalg.solve(A, b)


def _cg_case(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    from ..algorithms import iterative

    rng = np.random.default_rng(seed)
    M = rng.standard_normal((10, 10))
    A = M @ M.T + 10.0 * np.eye(10)  # SPD, well conditioned
    b = rng.standard_normal(10)
    res = iterative.conjugate_gradient(session.matrix(A), b, tol=1e-12)
    return res.x, np.linalg.solve(A, b)


# -- sparse / graph cases (optional scipy + NetworkX references) -----------------

_INT_INF = np.iinfo(np.int64).max


def _require_reference(module: str, case: str):
    """Import an optional reference package or fail with an install hint.

    The sparse compute paths themselves are NumPy-only; scipy and NetworkX
    are used *exclusively* as oracle references, via the ``repro[sparse]``
    extra.  A missing package turns the cell into a
    :class:`~repro.errors.ConfigError` naming the cell and the fix.
    """
    import importlib

    from ..errors import ConfigError

    try:
        return importlib.import_module(module)
    except ImportError as exc:
        raise ConfigError(
            f"oracle case {case!r} needs the optional reference package "
            f"{module.split('.')[0]!r}; install the extras with "
            f"pip install 'repro[sparse]'"
        ) from exc


def _sparse_operands(seed: int, shape=(13, 9), density: float = 0.35):
    """Seeded integer operands: a sparse matrix, a vector, an absence mask.

    Small positive integers keep every semiring's arithmetic exact, so
    all sparse cells compare bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    D = ((rng.random(shape) < density) * rng.integers(1, 9, shape)).astype(
        np.int64
    )
    x = rng.integers(1, 9, size=shape[1]).astype(np.int64)
    absent = rng.random(shape[1]) < 0.3
    return D, x, absent


def _spmv_case(semiring: str):
    def run(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        sps = _require_reference("scipy.sparse", f"spmv:{semiring}")
        from ..sparse import SparseMatrix, SparseVector, spmv

        D, x, absent = _sparse_operands(seed)
        machine = session.machine
        if semiring == "plus_times":
            S = sps.csr_matrix(D)
            A = SparseMatrix.from_dense(machine, D)
            xv = SparseVector.from_numpy(machine, np.where(absent, 0, x))
            return spmv(A, xv, semiring).to_numpy(), S @ np.where(absent, 0, x)
        if semiring == "or_and":
            pattern = D != 0
            S = sps.csr_matrix(pattern.astype(np.int64))
            A = SparseMatrix.from_dense(machine, pattern)
            xv = SparseVector.from_numpy(machine, ~absent, fill=False)
            return (
                spmv(A, xv, semiring).to_numpy(),
                (S @ (~absent).astype(np.int64)) > 0,
            )
        # min_plus: the scipy CSR supplies structure + values; the dense
        # reference masks absent entries exactly like the annihilator rule.
        dense = sps.csr_matrix(D).toarray()
        A = SparseMatrix.from_dense(machine, D)
        xv = SparseVector.from_numpy(
            machine, np.where(absent, _INT_INF, x), fill=_INT_INF
        )
        valid = (dense != 0) & ~absent[None, :]
        terms = np.where(valid, dense + x[None, :], _INT_INF)
        want = terms.min(axis=1, initial=_INT_INF)
        return spmv(A, xv, semiring).to_numpy(), want

    return run


def _spgemm_case(semiring: str):
    def run(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        sps = _require_reference("scipy.sparse", f"spgemm:{semiring}")
        from ..sparse import SparseMatrix, spgemm

        rng = np.random.default_rng(seed)
        D = ((rng.random((11, 8)) < 0.35) * rng.integers(1, 9, (11, 8))).astype(
            np.int64
        )
        E = ((rng.random((8, 9)) < 0.35) * rng.integers(1, 9, (8, 9))).astype(
            np.int64
        )
        machine = session.machine
        if semiring == "plus_times":
            want = (sps.csr_matrix(D) @ sps.csr_matrix(E)).toarray()
            A = SparseMatrix.from_dense(machine, D)
            B = SparseMatrix.from_dense(machine, E)
            return spgemm(A, B, semiring).to_dense(), want
        if semiring == "or_and":
            SA = sps.csr_matrix((D != 0).astype(np.int64))
            SB = sps.csr_matrix((E != 0).astype(np.int64))
            want = (SA @ SB).toarray() > 0
            A = SparseMatrix.from_dense(machine, D != 0)
            B = SparseMatrix.from_dense(machine, E != 0)
            return spgemm(A, B, semiring).to_dense(), want
        # min_plus: data is >= 1 so every path cost is >= 2 and the dense
        # zero background cannot collide with a computed entry.
        valid = (D != 0)[:, :, None] & (E != 0)[None, :, :]
        terms = np.where(
            valid, D[:, :, None] + E[None, :, :], _INT_INF
        )
        want = terms.min(axis=1, initial=_INT_INF)
        want = np.where(want == _INT_INF, 0, want)
        A = SparseMatrix.from_dense(machine, D)
        B = SparseMatrix.from_dense(machine, E)
        return spgemm(A, B, semiring).to_dense(), want

    return run


#: Seeded random-graph instances per graph cell (ISSUE floor: >= 5).
GRAPH_SEEDS = 5


def _graph_case(kind: str):
    def run(session: Session, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        nx = _require_reference("networkx", f"graph:{kind}")
        from ..algorithms import graph as galg

        gots, wants = [], []
        for offset in range(GRAPH_SEEDS):
            g = workloads.random_graph(16, 3.0, seed=seed + offset)
            nxg = nx.Graph()
            nxg.add_nodes_from(range(g.n))
            nxg.add_weighted_edges_from(
                zip(g.rows.tolist(), g.cols.tolist(), g.weights.tolist())
            )
            if kind == "bfs":
                got = galg.bfs(session, g, 0).values
                want = np.full(g.n, -1, dtype=np.int64)
                for node, d in nx.single_source_shortest_path_length(
                    nxg, 0
                ).items():
                    want[node] = d
            elif kind == "sssp":
                got = galg.sssp(session, g, 0).values
                want = np.full(g.n, -1, dtype=np.int64)
                for node, d in nx.single_source_dijkstra_path_length(
                    nxg, 0, weight="weight"
                ).items():
                    want[node] = int(d)
            else:
                got = galg.connected_components(session, g).values
                want = np.empty(g.n, dtype=np.int64)
                for comp in nx.connected_components(nxg):
                    label = min(comp)
                    for node in comp:
                        want[node] = label
            gots.append(got)
            wants.append(want)
        return np.concatenate(gots), np.concatenate(wants)

    return run


#: The registry, ordered roughly by how much machinery each case exercises.
CASES: Tuple[OracleCase, ...] = (
    OracleCase("matvec", _matvec_case),
    OracleCase("vecmat", _vecmat_case),
    OracleCase("gaussian", _gaussian_case, tol=1e-7),
    OracleCase("simplex", _simplex_case, tol=1e-7),
    OracleCase("fft", _fft_case, tol=1e-7),
    OracleCase("bitonic_sort", _sort_case, exact=True),
    OracleCase("histogram", _histogram_case, exact=True),
    OracleCase("qr_solve", _qr_case, tol=1e-6),
    OracleCase("tridiagonal", _tridiagonal_case, tol=1e-7),
    OracleCase("lu_solve", _lu_case, tol=1e-7),
    OracleCase("conjugate_gradient", _cg_case, tol=1e-6),
    # Sparse primitives vs scipy.sparse, one cell per registered semiring;
    # graph algorithms vs NetworkX over GRAPH_SEEDS seeded random graphs.
    # All integer data: every sparse cell is exact.
    OracleCase("spmv:plus_times", _spmv_case("plus_times"), exact=True),
    OracleCase("spmv:min_plus", _spmv_case("min_plus"), exact=True),
    OracleCase("spmv:or_and", _spmv_case("or_and"), exact=True),
    OracleCase("spgemm:plus_times", _spgemm_case("plus_times"), exact=True),
    OracleCase("spgemm:min_plus", _spgemm_case("min_plus"), exact=True),
    OracleCase("spgemm:or_and", _spgemm_case("or_and"), exact=True),
    OracleCase("graph:bfs", _graph_case("bfs"), exact=True),
    OracleCase("graph:sssp", _graph_case("sssp"), exact=True),
    OracleCase("graph:cc", _graph_case("cc"), exact=True),
)


# -- configuration matrix --------------------------------------------------------

#: (cost_model, plan_cache, trace) cells.  The full matrix covers every
#: combination that has its own code path; ``quick`` keeps one cell with
#: each feature on and one with each feature off.
FULL_MATRIX: Tuple[Tuple[str, bool, bool], ...] = tuple(
    (cm, cache, trace)
    for cm in ("cm2", "unit")
    for cache in (True, False)
    for trace in (False, True)
)
QUICK_MATRIX: Tuple[Tuple[str, bool, bool], ...] = (
    ("cm2", True, False),
    ("unit", False, True),
)


def _compare(
    case: OracleCase, got: np.ndarray, want: np.ndarray
) -> Tuple[bool, float, str]:
    got = np.asarray(got)
    want = np.asarray(want)
    if got.shape != want.shape:
        return False, float("inf"), f"shape {got.shape} != {want.shape}"
    if case.exact:
        if np.array_equal(got, want):
            return True, 0.0, ""
        bad = int(np.flatnonzero(np.ravel(got != want))[0])
        return False, float("inf"), f"first mismatch at flat index {bad}"
    err = float(np.max(np.abs(got - want))) if got.size else 0.0
    ok = bool(np.allclose(got, want, rtol=case.tol, atol=case.tol))
    return ok, err, "" if ok else f"max |got-want| = {err:g}"


def run_case(
    case: OracleCase,
    cost_model: str,
    plan_cache: bool,
    trace: bool,
    seed: int,
    n_dims: int = 4,
) -> CaseResult:
    """One (case, configuration) cell, sanitizer always attached."""
    config = {
        "cost_model": cost_model,
        "plan_cache": plan_cache,
        "trace": trace,
        "n_dims": n_dims,
        "seed": seed,
    }
    session = Session(
        n_dims,
        cost_model=cost_model,
        plan_cache=plan_cache,
        trace=trace,
        sanitize=True,
    )
    try:
        got, want = case.run(session, seed)
    except Exception as exc:  # a crash is a divergence with a traceback
        return CaseResult(
            case.name, config, False,
            float("inf"), f"{type(exc).__name__}: {exc}",
        )
    ok, err, detail = _compare(case, got, want)
    return CaseResult(case.name, config, ok, err, detail)


# -- fault-recovery axis ---------------------------------------------------------


def _recovery_workloads(seed: int):
    """The tier-1 workloads as (name, workload_factory, reference) triples."""
    from ..faults.recovery import (
        gaussian_workload,
        matvec_workload,
        simplex_workload,
    )

    A, b, _ = workloads.diagonally_dominant_system(12, seed)
    lp = workloads.feasible_lp(5, 8, seed)
    rng = np.random.default_rng(seed)
    # Integer-valued data keeps sum-reductions exact, so the recovered
    # result stays bit-identical to fault-free even though the survivor
    # subcube reduces in a different association order.
    M = rng.integers(-3, 4, size=(10, 10)).astype(np.float64)
    x0 = rng.integers(-3, 4, size=10).astype(np.float64)
    y_ref = x0
    for _ in range(3):
        y_ref = M @ y_ref
    return (
        ("gaussian", lambda: gaussian_workload(A, b), np.linalg.solve(A, b)),
        (
            "simplex",
            lambda: simplex_workload(lp.A, lp.b, lp.c),
            None,  # reference computed from the fault-free run below
        ),
        ("matvec", lambda: matvec_workload(M, x0, reps=3), y_ref),
    )


def run_recovery_case(
    name: str,
    make_workload,
    reference: Optional[np.ndarray],
    seed: int,
    n_dims: int = 4,
) -> CaseResult:
    """Kill a node mid-run; the recovered result must match fault-free.

    Self-calibrating: the fault-free run measures total simulated time,
    then a node kill is scheduled at 40% of it and the workload re-run
    under :func:`repro.faults.run_resilient` on a fresh session.
    """
    from ..faults.checkpoint import CheckpointStore
    from ..faults.plan import FaultPlan, NodeKill
    from ..faults.recovery import run_resilient

    config = {
        "cost_model": "cm2",
        "axis": "fault-recovered",
        "n_dims": n_dims,
        "seed": seed,
    }
    clean = Session(n_dims, cost_model="cm2", sanitize=True)
    baseline = make_workload()(clean, CheckpointStore(clean))
    if reference is not None:
        ok = bool(np.allclose(baseline, reference, rtol=1e-7, atol=1e-7))
        if not ok:
            return CaseResult(
                f"recovery:{name}", config, False, float("inf"),
                "fault-free run diverges from reference",
            )
    kill_at = 0.4 * clean.time
    plan = FaultPlan([NodeKill(time=kill_at, pid=1)])
    faulted = Session(n_dims, cost_model="cm2", faults=plan, sanitize=True)
    report = run_resilient(faulted, make_workload())
    config["kill_at"] = kill_at
    if report.error is not None:
        return CaseResult(
            f"recovery:{name}", config, False, float("inf"),
            f"unrecovered: {report.error}",
        )
    if not np.array_equal(np.asarray(report.result), np.asarray(baseline)):
        err = float(np.max(np.abs(np.asarray(report.result) - baseline)))
        return CaseResult(
            f"recovery:{name}", config, False, err,
            "recovered result is not bit-identical to the fault-free run",
        )
    config["recovered"] = report.recovered
    config["final_p"] = report.final_p
    return CaseResult(f"recovery:{name}", config, True)


def run_sdc_case(
    name: str,
    make_workload,
    reference: Optional[np.ndarray],
    seed: int,
    n_dims: int = 4,
    flips: int = 1,
) -> CaseResult:
    """Inject silent data corruption mid-run; ABFT must restore the result.

    Self-calibrating like :func:`run_recovery_case`: the fault-free run
    (no ABFT) measures total simulated time, then ``flips`` bit flips are
    scheduled at the same instant (40% of it) and the workload re-run with
    the checksum layer attached.  One flip must be corrected in place with
    zero replays; two or more land in one checksum block, escalate to
    :class:`~repro.errors.CorruptionError` and replay from checkpoint.
    Either way the recovered result must equal the fault-free baseline
    bit-for-bit (the workloads use integer-valued data, so every
    reduction is exact).
    """
    from ..faults.checkpoint import CheckpointStore
    from ..faults.plan import BitFlip, FaultPlan
    from ..faults.recovery import run_resilient

    config = {
        "cost_model": "cm2",
        "axis": "sdc-recovered",
        "n_dims": n_dims,
        "seed": seed,
        "flips": flips,
    }
    label = f"sdc:{name}" if flips == 1 else f"sdc-multi:{name}"
    clean = Session(n_dims, cost_model="cm2", sanitize=True)
    baseline = make_workload()(clean, CheckpointStore(clean))
    if reference is not None:
        if not bool(np.allclose(baseline, reference, rtol=1e-7, atol=1e-7)):
            return CaseResult(
                label, config, False, float("inf"),
                "fault-free run diverges from reference",
            )
    flip_at = 0.4 * clean.time
    # All flips hit distinct bytes of the most recently protected array at
    # the same instant: one is a correctable single-byte error, two or
    # more defeat the single-error checksum and force a replay.
    events = [
        BitFlip(time=flip_at, pid=1, slot=3 + 8 * k, bit=2, target=0)
        for k in range(flips)
    ]
    plan = FaultPlan(events)
    # Periodic scrubbing bounds detection latency: even a flip landing in
    # a block the workload never reads again is swept within one interval.
    from ..abft import ABFTManager

    faulted = Session(
        n_dims,
        cost_model="cm2",
        faults=plan,
        sanitize=True,
        abft=ABFTManager(scrub_interval=16),
    )
    report = run_resilient(faulted, make_workload())
    counters = faulted.machine.counters
    config["flip_at"] = flip_at
    config["fired"] = faulted.faults.stats.bit_flips
    config["detected"] = counters.abft_detected
    config["corrected"] = counters.abft_corrected
    config["recomputed"] = counters.abft_recomputed
    if report.error is not None:
        return CaseResult(
            label, config, False, float("inf"),
            f"unrecovered: {report.error}",
        )
    if faulted.faults.stats.bit_flips != flips:
        return CaseResult(
            label, config, False, float("inf"),
            f"only {faulted.faults.stats.bit_flips} of {flips} flips landed "
            f"(sdc_skipped={faulted.faults.stats.sdc_skipped})",
        )
    if counters.abft_detected == 0:
        return CaseResult(
            label, config, False, float("inf"),
            "corruption landed but the checksum layer never detected it",
        )
    if not np.array_equal(np.asarray(report.result), np.asarray(baseline)):
        err = float(np.max(np.abs(np.asarray(report.result) - baseline)))
        return CaseResult(
            label, config, False, err,
            "SDC-recovered result is not bit-identical to the fault-free run",
        )
    config["recovered"] = report.recovered
    config["recoveries"] = report.recoveries
    return CaseResult(label, config, True)


# -- batched-execution axis ------------------------------------------------------


def run_batched_case(
    workload: str,
    seed: int,
    n_dims: int = 4,
    n_lanes: int = 4,
) -> CaseResult:
    """Stack ``n_lanes`` seeded instances; every lane must be bit-identical
    to its own scalar run (results *and* simulated ticks) and close to the
    serial reference.

    The batched hypervisor (:mod:`repro.batch`) is imported only here, so
    batch-off oracle axes never load it.
    """
    from ..batch import sweep as batch_sweep

    config = {
        "cost_model": "cm2",
        "axis": "batched",
        "n_dims": n_dims,
        "seed": seed,
        "n_lanes": n_lanes,
    }
    label = f"batched:{workload}"
    grid = [
        {"n_dims": n_dims, "n": 10, "seed": seed + lane, "cost_model": "cm2"}
        for lane in range(n_lanes)
    ]
    try:
        batched = batch_sweep(workload, grid)
        scalar = [
            _scalar_rerun(workload, entry) for entry in grid
        ]
    except Exception as exc:
        return CaseResult(
            label, config, False, float("inf"), f"{type(exc).__name__}: {exc}"
        )
    if not all(r["batched"] for r in batched):
        return CaseResult(
            label, config, False, float("inf"),
            "compatible lanes were not stacked",
        )
    key = "y" if workload == "matvec" else "x"
    for lane, (got, want) in enumerate(zip(batched, scalar)):
        if not np.array_equal(got[key], want[key]):
            err = float(np.max(np.abs(got[key] - want[key])))
            return CaseResult(
                label, config, False, err,
                f"lane {lane} result differs from its scalar run",
            )
        if got["time"] != want["time"]:
            return CaseResult(
                label, config, False, float("inf"),
                f"lane {lane} simulated time {got['time']} != scalar "
                f"{want['time']}",
            )
        if not np.allclose(got[key], want["reference"], rtol=1e-7, atol=1e-7):
            err = float(np.max(np.abs(got[key] - want["reference"])))
            return CaseResult(
                label, config, False, err,
                f"lane {lane} diverges from the serial reference",
            )
    return CaseResult(label, config, True)


def _scalar_rerun(workload: str, params: dict) -> dict:
    """One grid entry on a scalar Session (sanitized) plus its reference."""
    from ..algorithms import gaussian, matvec as mv, simplex
    from ..batch.sweep import make_problem

    data = make_problem(workload, params)
    session = Session(
        params["n_dims"], cost_model=params.get("cost_model"), sanitize=True
    )
    if workload == "gaussian":
        res = gaussian.solve(session.matrix(data["A"]), data["b"])
        return {
            "x": res.x,
            "time": res.cost.time,
            "reference": np.linalg.solve(data["A"], data["b"]),
        }
    if workload == "simplex":
        from ..algorithms import serial

        res = simplex.solve(session.machine, data["A"], data["b"], data["c"])
        _, _, x_ref, _, _ = serial.simplex_solve(data["A"], data["b"], data["c"])
        return {"x": res.x, "time": res.cost.time, "reference": x_ref}
    M = session.matrix(data["A"])
    res = mv.matvec(M, session.row_vector(data["x"], like=M))
    return {
        "y": res.y.to_numpy(),
        "time": res.cost.time,
        "reference": data["A"] @ data["x"],
    }


# -- the sweep -------------------------------------------------------------------


def run_differential(
    seed: int = 0,
    n_dims: int = 4,
    quick: bool = False,
) -> dict:
    """Sweep all cases across the configuration matrix; returns a report.

    The report dict has ``passed`` (bool), ``cells`` (every cell outcome)
    and ``failures`` (the failing subset, with configs) — ready for JSON.
    """
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    results: List[CaseResult] = []
    for case in CASES:
        for cm, cache, trace in matrix:
            results.append(run_case(case, cm, cache, trace, seed, n_dims))
    recovery = _recovery_workloads(seed)
    for name, make_workload, reference in recovery:
        results.append(
            run_recovery_case(name, make_workload, reference, seed, n_dims)
        )
    for name, make_workload, reference in recovery:
        results.append(
            run_sdc_case(name, make_workload, reference, seed, n_dims)
        )
    # One multi-error cell: defeats the single-error code, must replay.
    g_name, g_factory, g_reference = recovery[0]
    results.append(
        run_sdc_case(g_name, g_factory, g_reference, seed, n_dims, flips=2)
    )
    # Batched-execution axis: lanes vs their own scalar runs, bit-for-bit.
    batched_workloads = ("gaussian", "matvec") if quick else (
        "gaussian", "simplex", "matvec"
    )
    for workload in batched_workloads:
        results.append(run_batched_case(workload, seed, n_dims))
    failures = [r for r in results if not r.passed]
    return {
        "passed": not failures,
        "seed": seed,
        "n_dims": n_dims,
        "matrix": [list(cell) for cell in matrix],
        "cases": len(CASES),
        "cells": [r.as_dict() for r in results],
        "failures": [r.as_dict() for r in failures],
    }


__all__ = [
    "CASES",
    "CaseResult",
    "FULL_MATRIX",
    "OracleCase",
    "QUICK_MATRIX",
    "run_batched_case",
    "run_case",
    "run_differential",
    "run_recovery_case",
    "run_sdc_case",
]
