"""Experiment warehouse: declarative run tables, JSONL history, gates.

Benchmarks used to live in one hand-edited ``BENCH_wallclock.json``.
This module is the metricbench-style replacement:

* a **run table** declares runs as workload x size x feature flags x
  reps (built-in ``smoke``/``full`` tables, or a JSON file);
* :func:`run_table` executes each run on a fresh :class:`~repro.core.
  session.Session` with the metrics registry and phase profiler attached,
  optionally validating results against NumPy references (``--validate``);
* every run appends one schema-versioned JSONL record (git rev, params,
  wall seconds, simulated costs, metrics snapshot, profiler attribution)
  to ``benchmarks/warehouse/runs.jsonl`` — a queryable, append-only
  history;
* :func:`pin_baselines` freezes the latest record per experiment key and
  :func:`compare` gates later runs against the pin: any simulated-tick
  increase is a regression (simulated costs are deterministic, so the
  gate is exact and CI-safe); wall-clock regressions gate only when a
  tolerance is given (host speed varies across machines);
* :func:`import_legacy` migrates the existing ``BENCH_wallclock.json``
  history into warehouse records.

Driven by ``python -m repro bench`` (see ``repro bench --help``) and the
CI ``bench-smoke`` step.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from .profiler import PhaseProfiler
from .registry import MetricsRegistry
from .timing import best_of

#: Schema tag stamped on every warehouse record.
SCHEMA = "repro-bench-v1"

#: Schema tag for pinned baseline files.
BASELINE_SCHEMA = "repro-bench-baselines-v1"

#: Default records file name inside a warehouse directory.
RUNS_FILE = "runs.jsonl"

#: Default baselines file name inside a warehouse directory.
BASELINES_FILE = "baselines.json"

#: Relative simulated-tick slack for the regression gate.  Simulated
#: costs are deterministic, so this only absorbs float serialization.
SIM_REL_TOLERANCE = 1e-9


def default_warehouse_dir() -> str:
    """``benchmarks/warehouse/`` at the repo root (next to this package)."""
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "benchmarks", "warehouse")


def git_rev() -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


# ---------------------------------------------------------------------------
# run specs and tables
# ---------------------------------------------------------------------------

#: Feature-flag defaults; a spec's ``flags`` overrides these.
DEFAULT_FLAGS: Dict[str, Any] = {
    "plan_cache": True,
    "sanitize": False,
    "sanitize_sample": 1,
    "abft": False,
}

WORKLOADS = (
    "gaussian", "simplex", "matvec", "batch_gaussian", "graph_bfs",
    "resilience",
)


@dataclass
class RunSpec:
    """One declarative run: workload x params x feature flags x reps."""

    workload: str
    params: Dict[str, Any]
    flags: Dict[str, Any] = field(default_factory=dict)
    reps: int = 2

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {self.workload!r}; one of {WORKLOADS}"
            )
        if self.reps < 1:
            raise ConfigError(f"reps must be >= 1, got {self.reps}")
        unknown = set(self.flags) - set(DEFAULT_FLAGS) - {"legacy", "n_runs"}
        if unknown:
            raise ConfigError(
                f"unknown feature flags {sorted(unknown)}; "
                f"known: {sorted(DEFAULT_FLAGS)}"
            )

    def resolved_flags(self) -> Dict[str, Any]:
        return dict(DEFAULT_FLAGS, **self.flags)


def record_key(workload: str, params: Dict, flags: Dict) -> str:
    """Canonical identity of one experiment (stable across runs)."""
    return json.dumps(
        {"workload": workload, "params": params, "flags": flags},
        sort_keys=True,
    )


#: Built-in run tables.  ``smoke`` is the CI gate: small cube, subsecond
#: runs, one spec per feature dimension.  ``full`` is the recorded
#: baseline scale (n=10 cubes, the bench_wallclock problem sizes).
BUILTIN_TABLES: Dict[str, List[RunSpec]] = {
    "smoke": [
        RunSpec("gaussian", {"n_dims": 5, "order": 24}),
        RunSpec("gaussian", {"n_dims": 5, "order": 24},
                {"plan_cache": False}),
        RunSpec("gaussian", {"n_dims": 5, "order": 24}, {"sanitize": True}),
        RunSpec("gaussian", {"n_dims": 5, "order": 24},
                {"sanitize": True, "sanitize_sample": 4}),
        RunSpec("gaussian", {"n_dims": 5, "order": 24}, {"abft": True}),
        RunSpec("simplex", {"n_dims": 5, "m": 12, "n": 9}),
        RunSpec("matvec", {"n_dims": 5, "n": 32, "iters": 3}),
        RunSpec("batch_gaussian", {"n_dims": 5, "n": 12, "n_runs": 4}),
        RunSpec("graph_bfs", {"n_dims": 5, "nodes": 48}),
    ],
    "full": [
        RunSpec("gaussian", {"n_dims": 10, "order": 127}, reps=3),
        RunSpec("gaussian", {"n_dims": 10, "order": 127},
                {"plan_cache": False}, reps=3),
        RunSpec("gaussian", {"n_dims": 10, "order": 127},
                {"sanitize": True}, reps=3),
        RunSpec("gaussian", {"n_dims": 10, "order": 127},
                {"sanitize": True, "sanitize_sample": 8}, reps=3),
        RunSpec("gaussian", {"n_dims": 10, "order": 127},
                {"abft": True}, reps=3),
        RunSpec("simplex", {"n_dims": 10, "m": 64, "n": 48}, reps=3),
        RunSpec("matvec", {"n_dims": 10, "n": 256, "iters": 4}, reps=3),
        RunSpec("batch_gaussian", {"n_dims": 8, "n": 16, "n_runs": 16},
                reps=3),
        RunSpec("graph_bfs", {"n_dims": 8, "nodes": 256}, reps=3),
    ],
    # Checkpoint-strategy comparison under one seeded fault plan: same
    # problem, same faults, only the checkpoint cost model varies.  The
    # n_dims=10 gaussian rows back the CI recovery gate (diskless and
    # incremental must save >= 3x cheaper than host gather).
    "resilience": [
        RunSpec("resilience",
                {"n_dims": 10, "size": 24, "workload": "gaussian",
                 "strategy": "host", "every": 2}),
        RunSpec("resilience",
                {"n_dims": 10, "size": 24, "workload": "gaussian",
                 "strategy": "diskless", "every": 2}),
        RunSpec("resilience",
                {"n_dims": 10, "size": 24, "workload": "gaussian",
                 "strategy": "incremental", "every": 2}),
        RunSpec("resilience",
                {"n_dims": 5, "size": 12, "workload": "gaussian",
                 "strategy": "host", "every": 2}),
        RunSpec("resilience",
                {"n_dims": 5, "size": 12, "workload": "gaussian",
                 "strategy": "diskless", "every": 2}),
        RunSpec("resilience",
                {"n_dims": 5, "size": 16, "workload": "matvec",
                 "strategy": "host", "every": 2}),
    ],
}


def load_table(name_or_path: str) -> List[RunSpec]:
    """A built-in table by name, or a JSON run-table file.

    A table file is ``{"runs": [{"workload", "params", "flags", "reps"},
    ...]}`` (or a bare list of such objects).
    """
    if name_or_path in BUILTIN_TABLES:
        return BUILTIN_TABLES[name_or_path]
    if not os.path.exists(name_or_path):
        raise ConfigError(
            f"unknown run table {name_or_path!r}: not a built-in "
            f"({sorted(BUILTIN_TABLES)}) and not a file"
        )
    with open(name_or_path) as fh:
        doc = json.load(fh)
    runs = doc.get("runs") if isinstance(doc, dict) else doc
    if not isinstance(runs, list):
        raise ConfigError(f"run table {name_or_path!r} has no 'runs' list")
    return [
        RunSpec(
            workload=entry["workload"],
            params=dict(entry.get("params", {})),
            flags=dict(entry.get("flags", {})),
            reps=int(entry.get("reps", 2)),
        )
        for entry in runs
    ]


# ---------------------------------------------------------------------------
# workload execution
# ---------------------------------------------------------------------------

def _scalar_workload(
    workload: str, params: Dict[str, Any]
) -> Tuple[Callable[[Any], Any], Callable[[Any], Tuple[bool, str]]]:
    """``(run(session) -> result, validate(result) -> (ok, detail))``."""
    from .. import workloads as W
    from ..algorithms import gaussian, simplex

    if workload == "gaussian":
        order = int(params["order"])
        A, b, _ = W.diagonally_dominant_system(order, seed=order)
        reference = np.linalg.solve(A, b)

        def run(session: Any) -> Any:
            return gaussian.solve(session.matrix(A), b)

        def validate(result: Any) -> Tuple[bool, str]:
            if np.allclose(result.x, reference, atol=1e-6):
                return True, ""
            err = float(np.abs(result.x - reference).max())
            return False, f"gaussian max error {err:.2e} vs numpy reference"

        return run, validate

    if workload == "simplex":
        m, n = int(params["m"]), int(params["n"])
        lp = W.feasible_lp(m, n, seed=m * 31 + n)

        def run(session: Any) -> Any:
            return simplex.solve(session.machine, lp.A, lp.b, lp.c)

        def validate(result: Any) -> Tuple[bool, str]:
            if result.status != "optimal":
                return False, f"simplex status {result.status!r}"
            x = np.asarray(result.x)
            if x.min(initial=0.0) < -1e-9:
                return False, "simplex solution violates x >= 0"
            slack = lp.A @ x - lp.b
            if slack.max(initial=0.0) > 1e-6:
                return False, "simplex solution violates A x <= b"
            return True, ""

        return run, validate

    if workload == "matvec":
        n = int(params["n"])
        iters = int(params.get("iters", 3))
        rng = np.random.default_rng(n)
        A = rng.integers(-3, 4, size=(n, n)).astype(np.float64)
        x0 = rng.integers(-3, 4, size=n).astype(np.float64)
        reference = x0
        for _ in range(iters):
            reference = A @ reference

        def run(session: Any) -> Any:
            dA = session.matrix(A)
            y = x0
            for _ in range(iters):
                y = dA.matvec(session.row_vector(y, dA)).to_numpy()
            return y

        def validate(result: Any) -> Tuple[bool, str]:
            # Integer-valued data keeps every reduction exact, so the
            # simulated result must equal the dense product bit-for-bit.
            if np.array_equal(np.asarray(result), reference):
                return True, ""
            return False, "matvec result differs from dense reference"

        return run, validate

    if workload == "graph_bfs":
        from ..algorithms import graph as G

        nodes = int(params["nodes"])
        degree = float(params.get("degree", 3.0))
        g = W.random_graph(nodes, degree, seed=nodes)
        reference = G.bfs_reference(g, 0)

        def run(session: Any) -> Any:
            return G.bfs(session, g, 0)

        def validate(result: Any) -> Tuple[bool, str]:
            # Integer levels: the sparse traversal must equal the serial
            # reference bit-for-bit.
            if np.array_equal(result.values, reference):
                return True, ""
            return False, "bfs levels differ from the serial reference"

        return run, validate

    raise ConfigError(f"no scalar runner for workload {workload!r}")


def _run_scalar_spec(spec: RunSpec, validate: bool) -> Dict[str, Any]:
    from ..core.session import Session

    flags = spec.resolved_flags()
    params = dict(spec.params)
    n_dims = int(params["n_dims"])
    run, check = _scalar_workload(spec.workload, params)

    sanitize: Any = False
    if flags["sanitize"]:
        from ..check.sanitizer import MachineSanitizer

        sanitize = MachineSanitizer(sample_every=int(flags["sanitize_sample"]))

    profiler = PhaseProfiler()
    session = Session(
        n_dims,
        plan_cache=bool(flags["plan_cache"]),
        sanitize=sanitize,
        abft=bool(flags["abft"]),
        metrics=MetricsRegistry(),
        profile=profiler,
    )

    def reset() -> None:
        session.reset_counters()
        if session.abft is not None:
            session.abft.reset()

    run(session)  # warm-up: first-touch plan construction is not the metric
    profiler.start()
    timed = best_of(lambda: run(session), spec.reps, setup=reset)
    profiler.stop()

    validated: Optional[bool] = None
    detail = ""
    if validate:
        validated, detail = check(timed.result)

    return {
        "wall_s": {"best": timed.best, "mean": timed.mean},
        "sim": session.snapshot().as_dict(),
        "metrics": session.metrics.collect(),
        "profile": profiler.as_dict(top_n=8),
        "validated": validated,
        "validate_detail": detail,
    }


def _run_batch_spec(spec: RunSpec, validate: bool) -> Dict[str, Any]:
    from .. import workloads as W
    from ..batch import sweep
    from ..batch.sweep import make_problem  # noqa: F401  (import check)

    params = dict(spec.params)
    n_dims = int(params["n_dims"])
    n = int(params["n"])
    n_runs = int(params["n_runs"])
    grid = [
        {"n_dims": n_dims, "n": n, "seed": seed} for seed in range(n_runs)
    ]

    timed = best_of(
        lambda: sweep("gaussian", grid), spec.reps, warmup=True
    )
    outs = timed.result

    # Lane costs are vector-valued; the machine clock is the makespan
    # (slowest lane) and volume counters sum across lanes.
    sim = {
        "time": float(max(o["time"] for o in outs)),
        "flops": float(sum(o["cost"].flops for o in outs)),
        "elements_transferred": float(
            sum(o["cost"].elements_transferred for o in outs)
        ),
        "comm_rounds": float(sum(o["cost"].comm_rounds for o in outs)),
        "local_moves": float(sum(o["cost"].local_moves for o in outs)),
    }
    metrics = {
        "batch.lanes": float(n_runs),
        "batch.stacked": float(sum(1 for o in outs if o["batched"])),
    }

    validated: Optional[bool] = None
    detail = ""
    if validate:
        validated = True
        for lane, entry in enumerate(grid):
            data = make_problem("gaussian", entry)
            reference = np.linalg.solve(data["A"], data["b"])
            if not np.allclose(outs[lane]["x"], reference, atol=1e-6):
                validated = False
                detail = f"batch lane {lane} diverged from numpy reference"
                break

    return {
        "wall_s": {"best": timed.best, "mean": timed.mean},
        "sim": sim,
        "metrics": metrics,
        "profile": None,
        "validated": validated,
        "validate_detail": detail,
    }


def _run_resilience_spec(spec: RunSpec, validate: bool) -> Dict[str, Any]:
    """A faulted resilient run under one checkpoint strategy.

    The fault plan is seeded, so every rep sees the identical fault
    sequence; each rep gets a *fresh* session and injector because a
    resilient run mutates both (degrades, promotions, consumed events).
    Validation compares the recovered result bit-for-bit against the
    fault-free baseline of the same problem.
    """
    from ..core.session import Session
    from ..faults import (
        CheckpointPolicy,
        CheckpointStore,
        FaultInjector,
        FaultPlan,
        run_resilient,
    )
    from ..faults.chaos import build_workload

    params = dict(spec.params)
    n_dims = int(params["n_dims"])
    size = int(params["size"])
    inner = str(params.get("workload", "gaussian"))
    strategy = str(params.get("strategy", "host"))
    every = int(params.get("every", 4))
    fault_seed = int(params.get("fault_seed", 0))
    prob_seed = int(params.get("prob_seed", 0))

    make = build_workload(inner, size, prob_seed, checkpoint_every=every)

    dry = Session(n_dims)
    baseline = np.asarray(make()(dry, CheckpointStore(dry)))
    horizon = 0.6 * max(dry.time, 1.0)
    plan_template = FaultPlan.random(
        n_dims,
        seed=fault_seed,
        horizon=horizon,
        link_kills=1,
        node_kills=1,
        drops=2,
    )

    def one_run() -> Tuple[Any, Any]:
        injector = FaultInjector(plan_template)
        session = Session(n_dims, faults=injector)
        policy = CheckpointPolicy(strategy=strategy, every=every)
        report = run_resilient(
            session, make(), max_recoveries=3, policy=policy
        )
        return session, report

    timed = best_of(one_run, spec.reps, warmup=True)
    session, report = timed.result
    ck = report.checkpoint or {}

    validated: Optional[bool] = None
    detail = ""
    if validate:
        validated = bool(
            report.recovered
            and report.result is not None
            and np.array_equal(np.asarray(report.result), baseline)
        )
        if not validated:
            detail = (
                report.error
                or "recovered result differs from fault-free baseline"
            )

    metrics = {
        "resilience.saves": float(ck.get("saves", 0)),
        "resilience.restores": float(ck.get("restores", 0)),
        "resilience.save_ticks": float(ck.get("save_ticks", 0.0)),
        "resilience.restore_ticks": float(ck.get("restore_ticks", 0.0)),
        "resilience.recovery_ticks": float(report.stats.recovery_ticks),
        "resilience.recoveries": float(report.recoveries),
        "resilience.promotions": float(report.promotions),
        "resilience.expansions": float(report.stats.expansions),
        "resilience.final_p": float(report.final_p),
        "resilience.fault_free_ticks": float(dry.time),
    }

    return {
        "wall_s": {"best": timed.best, "mean": timed.mean},
        "sim": session.snapshot().as_dict(),
        "metrics": metrics,
        "profile": None,
        "validated": validated,
        "validate_detail": detail,
    }


def run_spec(spec: RunSpec, validate: bool = False) -> Dict[str, Any]:
    """Execute one run spec; returns a schema-versioned warehouse record."""
    if spec.workload == "batch_gaussian":
        measured = _run_batch_spec(spec, validate)
    elif spec.workload == "resilience":
        measured = _run_resilience_spec(spec, validate)
    else:
        measured = _run_scalar_spec(spec, validate)
    record = {
        "schema": SCHEMA,
        "kind": "run",
        "recorded_unix": time.time(),
        "git_rev": git_rev(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": spec.workload,
        "params": dict(spec.params),
        "flags": spec.resolved_flags(),
        "reps": spec.reps,
    }
    record.update(measured)
    validate_record(record)
    return record


def run_table(
    table: List[RunSpec],
    validate: bool = False,
    reps: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Execute every spec in a table (``reps`` overrides each spec's)."""
    records = []
    for spec in table:
        if reps is not None:
            spec = RunSpec(spec.workload, spec.params, spec.flags, reps)
        record = run_spec(spec, validate=validate)
        records.append(record)
        if progress is not None:
            flag_bits = ",".join(
                f"{k}={v}" for k, v in sorted(spec.flags.items())
            ) or "defaults"
            status = {True: "ok", False: "FAIL", None: "-"}[
                record["validated"]
            ]
            progress(
                f"{spec.workload:<15s} {json.dumps(spec.params, sort_keys=True):<40s} "
                f"[{flag_bits}] wall {record['wall_s']['best'] * 1e3:8.2f} ms  "
                f"sim {record['sim']['time']:,.0f} ticks  validate {status}"
            )
    return records


# ---------------------------------------------------------------------------
# record schema + persistence
# ---------------------------------------------------------------------------

def validate_record(record: Any) -> None:
    """Schema-check one warehouse record; raises :class:`ConfigError`."""
    if not isinstance(record, dict):
        raise ConfigError(f"record is not an object: {type(record).__name__}")

    def fail(detail: str) -> None:
        raise ConfigError(f"invalid warehouse record: {detail}")

    if record.get("schema") != SCHEMA:
        fail(f"schema {record.get('schema')!r} != {SCHEMA!r}")
    if record.get("kind") not in ("run", "legacy-import", "chaos"):
        fail(f"unknown kind {record.get('kind')!r}")
    for key, kinds in (
        ("workload", str),
        ("params", dict),
        ("flags", dict),
        ("git_rev", str),
        ("recorded_unix", (int, float)),
        ("wall_s", dict),
        ("sim", dict),
    ):
        if not isinstance(record.get(key), kinds):
            fail(f"missing or mistyped field {key!r}")
    best = record["wall_s"].get("best")
    if not isinstance(best, (int, float)) or not best >= 0.0:
        fail(f"wall_s.best is not a non-negative number: {best!r}")
    sim_time = record["sim"].get("time")
    if not isinstance(sim_time, (int, float)) or not math.isfinite(sim_time):
        fail(f"sim.time is not a finite number: {sim_time!r}")
    if record["kind"] == "run":
        for field_name in (
            "flops", "elements_transferred", "comm_rounds", "local_moves"
        ):
            if not isinstance(record["sim"].get(field_name), (int, float)):
                fail(f"sim.{field_name} missing on a 'run' record")
    if record["kind"] in ("run", "chaos"):
        if not isinstance(record.get("metrics"), dict):
            fail(f"metrics snapshot missing on a {record['kind']!r} record")


def append_records(records: List[Dict[str, Any]], path: str) -> int:
    """Append records to a JSONL file (validated first); returns the count."""
    for record in records:
        validate_record(record)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "a") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_records(path: str) -> List[Dict[str, Any]]:
    """Read a warehouse JSONL file (every record schema-checked)."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ConfigError(f"{path}:{lineno}: not JSON: {exc}") from None
            validate_record(record)
            records.append(record)
    return records


# ---------------------------------------------------------------------------
# baselines + regression gate
# ---------------------------------------------------------------------------

def _latest_by_key(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    latest: Dict[str, Dict[str, Any]] = {}
    for record in records:
        key = record_key(
            record["workload"], record["params"], record["flags"]
        )
        latest[key] = record  # file order: later lines win
    return latest


def pin_baselines(records: List[Dict[str, Any]], path: str) -> Dict[str, Any]:
    """Freeze the latest record per experiment key as the regression pin.

    Only fresh ``run`` records pin; ``legacy-import`` history stays in
    the runs file for reference but can never gate (nothing ever runs
    under a legacy key, so pinning one would just report as missing
    forever).
    """
    fresh = [r for r in records if r.get("kind") == "run"]
    entries = {}
    for key, record in sorted(_latest_by_key(fresh).items()):
        entries[key] = {
            "workload": record["workload"],
            "params": record["params"],
            "flags": record["flags"],
            "sim_time": record["sim"]["time"],
            "wall_best_s": record["wall_s"]["best"],
            "git_rev": record["git_rev"],
            "recorded_unix": record["recorded_unix"],
        }
    doc = {
        "schema": BASELINE_SCHEMA,
        "pinned_unix": time.time(),
        "git_rev": git_rev(),
        "entries": entries,
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def load_baselines(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ConfigError(
            f"{path} is not a baselines file "
            f"(schema {BASELINE_SCHEMA!r} expected)"
        )
    return doc


def compare(
    records: List[Dict[str, Any]],
    baselines: Dict[str, Any],
    wall_tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """Gate the latest records against pinned baselines.

    Simulated ticks are deterministic, so any increase beyond float
    serialization slack is a regression.  Wall seconds gate only when
    ``wall_tolerance`` is given (e.g. ``0.25`` = +25% allowed): host
    speed differs across machines, so the wall gate is opt-in.
    """
    entries = baselines.get("entries", {})
    latest = _latest_by_key(records)
    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    compared = 0
    for key, record in sorted(latest.items()):
        base = entries.get(key)
        if base is None:
            continue
        compared += 1
        label = f"{record['workload']} {json.dumps(record['params'], sort_keys=True)}"
        sim_now, sim_pin = record["sim"]["time"], base["sim_time"]
        if sim_now > sim_pin * (1.0 + SIM_REL_TOLERANCE):
            regressions.append(
                {
                    "key": key,
                    "label": label,
                    "kind": "sim",
                    "observed": sim_now,
                    "pinned": sim_pin,
                    "ratio": sim_now / sim_pin if sim_pin else float("inf"),
                }
            )
        elif sim_now < sim_pin * (1.0 - SIM_REL_TOLERANCE):
            improvements.append(
                {"key": key, "label": label, "kind": "sim",
                 "observed": sim_now, "pinned": sim_pin}
            )
        if wall_tolerance is not None:
            wall_now = record["wall_s"]["best"]
            wall_pin = base["wall_best_s"]
            if wall_now > wall_pin * (1.0 + wall_tolerance):
                regressions.append(
                    {
                        "key": key,
                        "label": label,
                        "kind": "wall",
                        "observed": wall_now,
                        "pinned": wall_pin,
                        "ratio": (
                            wall_now / wall_pin if wall_pin else float("inf")
                        ),
                    }
                )
    new_keys = sorted(set(latest) - set(entries))
    missing_keys = sorted(set(entries) - set(latest))
    return {
        "compared": compared,
        "regressions": regressions,
        "improvements": improvements,
        "new": new_keys,
        "missing": missing_keys,
        "passed": not regressions,
    }


# ---------------------------------------------------------------------------
# legacy migration
# ---------------------------------------------------------------------------

def import_legacy(path: str) -> List[Dict[str, Any]]:
    """Convert a ``BENCH_wallclock.json`` history into warehouse records.

    Every measured configuration becomes one ``legacy-import`` record;
    the source experiment name lands in ``flags["legacy"]`` so legacy
    keys can never collide with (or gate) fresh warehouse runs.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ConfigError(f"{path} is not a benchmark report object")

    stamp = time.time()

    def make(workload, params, flags, wall_best, sim_time, reps=None):
        record = {
            "schema": SCHEMA,
            "kind": "legacy-import",
            "recorded_unix": stamp,
            "git_rev": git_rev(),
            "host": {"source": os.path.basename(path)},
            "workload": workload,
            "params": dict(params),
            "flags": flags,
            "reps": reps,
            "wall_s": {"best": wall_best, "mean": None},
            "sim": {"time": sim_time},
            "metrics": {},
        }
        validate_record(record)
        return record

    records: List[Dict[str, Any]] = []
    for section in ("results", "scaling"):
        for entry in doc.get(section, []) or []:
            snap_time = float(entry.get("snapshot", {}).get("time", 0.0))
            for on, wall_key in ((True, "cache_on_s"), (False, "cache_off_s")):
                records.append(
                    make(
                        entry["workload"],
                        entry["params"],
                        {"legacy": entry.get("experiment", section),
                         "plan_cache": on},
                        float(entry[wall_key]),
                        snap_time,
                        entry.get("reps"),
                    )
                )
    sanitizer = doc.get("sanitizer_overhead")
    if sanitizer:
        snap_time = float(sanitizer.get("snapshot", {}).get("time", 0.0))
        for on, wall_key in ((True, "sanitize_on_s"), (False, "sanitize_off_s")):
            records.append(
                make(
                    sanitizer.get("workload", "gaussian"),
                    sanitizer["params"],
                    {"legacy": "sanitizer-overhead", "sanitize": on},
                    float(sanitizer[wall_key]),
                    snap_time,
                    sanitizer.get("reps"),
                )
            )
    abft = doc.get("abft_overhead")
    if abft:
        for workload in ("gaussian", "matvec"):
            entry = abft.get(workload)
            if not entry:
                continue
            for on, wall_key, sim_key in (
                (True, "abft_on_s", "simulated_on"),
                (False, "abft_off_s", "simulated_off"),
            ):
                records.append(
                    make(
                        workload,
                        abft["params"],
                        {"legacy": "abft-overhead", "abft": on},
                        float(entry[wall_key]),
                        float(entry[sim_key]),
                        abft.get("reps"),
                    )
                )
    batch = doc.get("batch_speedup")
    if batch:
        for point in batch.get("curve", []) or []:
            records.append(
                make(
                    point["workload"],
                    point["params"],
                    {"legacy": "batch-hypervisor"},
                    float(point["batch_s"]),
                    0.0,
                    point.get("reps"),
                )
            )
    return records


__all__ = [
    "SCHEMA",
    "BASELINE_SCHEMA",
    "RUNS_FILE",
    "BASELINES_FILE",
    "RunSpec",
    "BUILTIN_TABLES",
    "default_warehouse_dir",
    "git_rev",
    "record_key",
    "load_table",
    "run_spec",
    "run_table",
    "validate_record",
    "append_records",
    "load_records",
    "pin_baselines",
    "load_baselines",
    "compare",
    "import_legacy",
]
