"""Shared wall-clock timing helpers for the benchmark suite.

Every ``benchmarks/bench_*.py`` script used to carry its own copy of the
same two measurement loops; they live here once, importable both from the
library (the experiment warehouse) and from the scripts (re-exported via
``benchmarks/harness.py``).

* :func:`best_of` — warm-up + ``reps`` timed calls, keep the minimum.
  The min is the standard noise-resistant estimator: host-load spikes
  only ever make a rep slower.
* :func:`interleaved` — the same, over several configurations *alternated
  rep by rep*, so host load drift hits every configuration equally
  instead of biasing whichever ran second.

Both take an injectable ``clock`` so tests can pin the arithmetic with a
deterministic counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..errors import ConfigError


@dataclass
class TimedRun:
    """One configuration's measurement: best/mean seconds + last result."""

    best: float
    mean: float
    result: Any


def best_of(
    run: Callable[[], Any],
    reps: int,
    setup: Optional[Callable[[], Any]] = None,
    warmup: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> TimedRun:
    """Time ``run()`` ``reps`` times; keep the minimum (and the mean).

    ``setup`` runs before each timed rep (untimed — e.g. a counter
    reset); ``warmup`` runs ``run()`` once untimed first, so first-touch
    work (plan construction, allocator warm-up) is not measured.
    """
    if reps < 1:
        raise ConfigError(f"reps must be >= 1, got {reps}")
    if warmup:
        run()
    best = float("inf")
    total = 0.0
    result = None
    for _ in range(reps):
        if setup is not None:
            setup()
        t0 = clock()
        result = run()
        dt = clock() - t0
        best = min(best, dt)
        total += dt
    return TimedRun(best=best, mean=total / reps, result=result)


def interleaved(
    runs: Sequence[Callable[[], Any]],
    reps: int,
    setups: Optional[Sequence[Optional[Callable[[], Any]]]] = None,
    warmup: bool = True,
    clock: Callable[[], float] = time.perf_counter,
) -> List[TimedRun]:
    """Best-of-``reps`` for several configurations, alternated rep by rep.

    ``runs[i]`` is timed once per rep in order ``0..k-1, 0..k-1, ...``;
    ``setups[i]`` (when given) runs untimed before each of its timed
    calls.  With ``warmup`` (the default) every configuration first runs
    once untimed, before any setup.
    """
    if reps < 1:
        raise ConfigError(f"reps must be >= 1, got {reps}")
    if setups is not None and len(setups) != len(runs):
        raise ConfigError(
            f"{len(setups)} setups for {len(runs)} runs; counts must match"
        )
    if warmup:
        for run in runs:
            run()
    best = [float("inf")] * len(runs)
    totals = [0.0] * len(runs)
    results: List[Any] = [None] * len(runs)
    for _ in range(reps):
        for i, run in enumerate(runs):
            if setups is not None and setups[i] is not None:
                setups[i]()
            t0 = clock()
            results[i] = run()
            dt = clock() - t0
            best[i] = min(best[i], dt)
            totals[i] += dt
    return [
        TimedRun(best=best[i], mean=totals[i] / reps, result=results[i])
        for i in range(len(runs))
    ]


__all__ = ["TimedRun", "best_of", "interleaved"]
