"""Deterministic phase profiler: host wall-clock attribution by phase.

The simulated clock says *what the machine would cost*; this profiler
says where the *host* time goes — the instrument the ROADMAP's overhead
attack needs (sanitizer ~2x wall, ABFT ~10x wall on gaussian, with no
tooling to explain which hook burns it).

Attribution is exclusive and event-driven: every :meth:`push` / :meth:`pop`
boundary charges the wall time since the previous boundary to the
innermost open label (or to the ``(unattributed)`` root when none is
open).  Because only boundaries read the clock, the algorithm is
deterministic given a clock — tests inject a fake counter clock and pin
the exact attribution.

Three kinds of label arrive for free once attached:

* every ``Hypercube.phase(name)`` pushes/pops ``name`` (so core compute
  and the ABFT ``abft-maintain``/``abft-verify``/``abft-scrub`` phases
  split out immediately);
* :meth:`bind` wraps an attached sanitizer in a timing proxy, so every
  audit call lands under ``sanitizer-checks``;
* :meth:`PlanCache.memo <repro.machine.plans.PlanCache.memo>` wraps plan
  construction misses under ``plan-build``.

Contract (pinned by ``tests/test_metrics.py``): the profiler never
charges the machine — simulated ticks and all counters are bit-identical
with profiling on or off.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError

#: Environment variable that turns the profiler on for new ``Session``s.
ENV_FLAG = "REPRO_PROFILE"

#: Label for wall time not inside any phase/section.
ROOT = "(unattributed)"

#: Cap on Chrome counter-track samples recorded at pops.
MAX_SAMPLES = 4096


def env_enabled() -> bool:
    """The process-wide default from ``REPRO_PROFILE`` (default: off)."""
    import os

    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


class _ProfiledProxy:
    """Wraps an attachment so every method call is timed under one label.

    The proxy forwards everything; callable attributes are wrapped once
    (memoized into the instance ``__dict__``) in a closure that pushes
    the label around the call.  Non-callable attributes pass through
    live, so ``proxy.stats`` etc. always reflect the target.
    """

    _PASSTHROUGH = ("_target", "_profiler", "_label", "_category")

    def __init__(self, target: Any, profiler: "PhaseProfiler",
                 label: str, category: str) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_profiler", profiler)
        object.__setattr__(self, "_label", label)
        object.__setattr__(self, "_category", category)

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._target, name)
        if not callable(attr):
            return attr
        profiler = self._profiler
        label = self._label
        category = self._category

        def timed(*args: Any, **kwargs: Any) -> Any:
            profiler.push(label, category)
            try:
                return attr(*args, **kwargs)
            finally:
                profiler.pop()

        timed.__name__ = getattr(attr, "__name__", name)
        # Memoize: later lookups skip __getattr__ entirely.  Bound methods
        # are stable on the target, so the closure never goes stale.
        object.__setattr__(self, name, timed)
        return timed

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._target, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ProfiledProxy({self._target!r} as {self._label!r})"


class PhaseProfiler:
    """Exclusive host wall-clock attribution over phase boundaries.

    Parameters
    ----------
    clock:
        A zero-argument callable returning seconds; defaults to
        :func:`time.perf_counter`.  Tests inject a deterministic counter.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.machine = None
        self.times: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.categories: Dict[str, str] = {}
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self._stack: List[str] = []
        self._mark: Optional[float] = None
        self._t0: Optional[float] = None
        self._total = 0.0
        self._running = False

    # -- binding --------------------------------------------------------------

    def bind(self, machine: Any) -> None:
        """Bind to a machine; wraps an attached sanitizer in a timing proxy.

        Attach the profiler *after* the sanitizer so the proxy sees it
        (``Session`` does this); a sanitizer attached later is not wrapped.
        """
        if self.machine is not None and self.machine is not machine:
            raise ConfigError(
                "profiler is already bound to a different machine"
            )
        self.machine = machine
        self._wrap_sanitizer(machine)

    def rebind(self, machine: Any) -> None:
        """Re-bind to a replacement machine (degraded-mode recovery)."""
        self.machine = machine
        self._wrap_sanitizer(machine)

    def _wrap_sanitizer(self, machine: Any) -> None:
        sanitizer = machine.sanitizer
        if sanitizer is not None and not isinstance(sanitizer, _ProfiledProxy):
            machine.sanitizer = _ProfiledProxy(
                sanitizer, self, "sanitizer-checks", "check"
            )

    # -- run control ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin (or resume) attribution; prior totals accumulate."""
        if self._running:
            raise ConfigError("profiler is already running")
        self._running = True
        self._t0 = self._mark = self.clock()

    def stop(self) -> float:
        """End attribution; returns total profiled seconds so far."""
        if not self._running:
            raise ConfigError("profiler is not running")
        now = self.clock()
        self._attribute(now)
        self._total += now - self._t0
        self._running = False
        self._stack.clear()
        return self._total

    @contextlib.contextmanager
    def profiled(self) -> Iterator["PhaseProfiler"]:
        """``with profiler.profiled(): workload()`` — start/stop bracket."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    # -- attribution ----------------------------------------------------------

    def _attribute(self, now: float) -> None:
        label = self._stack[-1] if self._stack else ROOT
        self.times[label] = self.times.get(label, 0.0) + (now - self._mark)
        self._mark = now

    def push(self, label: str, category: str = "phase") -> None:
        """Open ``label``; time since the last boundary goes to the outer one."""
        if not self._running:
            return
        self._attribute(self.clock())
        self._stack.append(label)
        self.counts[label] = self.counts.get(label, 0) + 1
        self.categories.setdefault(label, category)

    def pop(self) -> None:
        """Close the innermost label (tolerant of an empty stack)."""
        if not self._running or not self._stack:
            return
        self._attribute(self.clock())
        self._stack.pop()
        machine = self.machine
        if machine is not None and not self._stack:
            self._sample(machine)

    @contextlib.contextmanager
    def section(self, label: str, category: str = "section") -> Iterator[None]:
        """Attribute a block to ``label`` (used for plan-build work)."""
        self.push(label, category)
        try:
            yield
        finally:
            self.pop()

    # -- Chrome counter track --------------------------------------------------

    def _sample(self, machine: Any) -> None:
        """Record cumulative per-category host seconds on the sim clock.

        Sampled when the outermost label closes, capped, never charging.
        """
        if len(self.samples) >= MAX_SAMPLES:
            return
        time_now = machine.counters.time
        try:
            ts = float(time_now)
        except TypeError:
            ts = float(max(time_now))  # LaneCounters vector clock
        totals: Dict[str, float] = {}
        for label, seconds in self.times.items():
            category = self.categories.get(label, "phase")
            totals[category] = totals.get(category, 0.0) + seconds
        self.samples.append((ts, totals))

    def counter_track_events(self, tid: int = 3) -> List[Dict[str, Any]]:
        """Samples as a Chrome ``"C"`` counter track of host seconds."""
        events: List[Dict[str, Any]] = []
        if not self.samples:
            return events
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": "host time (s)"},
            }
        )
        for ts, totals in self.samples:
            events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": tid,
                    "name": "host_time_s",
                    "ts": ts,
                    "args": dict(totals),
                }
            )
        return events

    # -- reporting -------------------------------------------------------------

    @property
    def total(self) -> float:
        """Total profiled wall seconds (running time excluded until stop)."""
        return self._total

    @property
    def attributed(self) -> float:
        """Seconds attributed to named labels (everything but the root)."""
        return sum(t for label, t in self.times.items() if label != ROOT)

    @property
    def coverage(self) -> float:
        """Fraction of profiled wall time attributed to named labels."""
        if self._total <= 0.0:
            return 0.0
        return self.attributed / self._total

    def table(self, top_n: int = 10) -> List[Dict[str, Any]]:
        """Per-label rows sorted by descending exclusive seconds."""
        rows = [
            {
                "label": label,
                "category": self.categories.get(label, "root"),
                "seconds": seconds,
                "share": seconds / self._total if self._total else 0.0,
                "count": self.counts.get(label, 0),
            }
            for label, seconds in self.times.items()
        ]
        rows.sort(key=lambda r: -r["seconds"])
        return rows[:top_n]

    def category_breakdown(self) -> Dict[str, float]:
        """Exclusive seconds rolled up by category (root kept separate)."""
        totals: Dict[str, float] = {}
        for label, seconds in self.times.items():
            category = self.categories.get(label, "root")
            totals[category] = totals.get(category, 0.0) + seconds
        return totals

    def as_dict(self, top_n: int = 10) -> Dict[str, Any]:
        """JSON-serialisable summary (used by reports and the warehouse)."""
        return {
            "total_s": self._total,
            "attributed_s": self.attributed,
            "coverage": self.coverage,
            "phases": self.table(top_n),
            "categories": self.category_breakdown(),
        }

    def format_table(self, top_n: int = 10) -> str:
        """The per-phase top-N table as printable text."""
        lines = [
            f"host wall time    : {self._total:.3f}s "
            f"({100.0 * self.coverage:.1f}% attributed)",
            f"  {'label':<24s} {'category':<9s} {'seconds':>9s} "
            f"{'share':>7s} {'count':>7s}",
        ]
        for row in self.table(top_n):
            lines.append(
                f"  {row['label']:<24s} {row['category']:<9s} "
                f"{row['seconds']:>9.3f} {100.0 * row['share']:>6.1f}% "
                f"{row['count']:>7d}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return (
            f"PhaseProfiler({state}, total={self._total:.3f}s, "
            f"labels={len(self.times)})"
        )


__all__ = [
    "PhaseProfiler",
    "ROOT",
    "env_enabled",
    "ENV_FLAG",
    "MAX_SAMPLES",
]
