"""Observability warehouse: metrics registry, phase profiler, bench records.

Three layers (see ``docs/observability.md`` and ``docs/performance.md``):

* :mod:`repro.metrics.registry` — a flat, typed metric namespace every
  subsystem publishes into (``plan_cache.hits``, ``abft.scrub_rounds``,
  ``router.detours``, ``batch.active_lanes``, ...), snapshotable on the
  simulated clock, exportable as JSONL or Chrome counter tracks.
* :mod:`repro.metrics.profiler` — deterministic host wall-clock
  attribution over ``Hypercube.phase`` boundaries, sanitizer audits and
  plan-cache builds.
* :mod:`repro.metrics.warehouse` — declarative run tables behind
  ``python -m repro bench``, appending schema-versioned JSONL records to
  ``benchmarks/warehouse/`` and gating CI against pinned baselines.

Everything here follows the tracer's attachment contract: null by
default, read-only, and bit-identical simulated costs on or off.
"""

from .profiler import ENV_FLAG as PROFILE_ENV_FLAG
from .profiler import PhaseProfiler
from .profiler import env_enabled as profile_env_enabled
from .registry import ENV_FLAG as METRICS_ENV_FLAG
from .registry import Metric, MetricsRegistry
from .registry import env_enabled as metrics_env_enabled
from .timing import TimedRun, best_of, interleaved

__all__ = [
    "MetricsRegistry",
    "Metric",
    "PhaseProfiler",
    "TimedRun",
    "best_of",
    "interleaved",
    "METRICS_ENV_FLAG",
    "PROFILE_ENV_FLAG",
    "metrics_env_enabled",
    "profile_env_enabled",
]
