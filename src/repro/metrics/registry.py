"""Metrics registry: one flat, typed namespace for every subsystem's counters.

The simulator has grown half a dozen observability surfaces — plan-cache
hit counts on :class:`~repro.machine.counters.Counters`, fault totals on
``FaultStats``, checksum totals on ``ABFTStats``, sanitizer check counts,
per-lane batch accounting — each with its own ad-hoc dict shape.  The
:class:`MetricsRegistry` gives them one publication contract:

* every subsystem implements ``publish_metrics(registry)`` and calls
  :meth:`MetricsRegistry.publish` with flat dotted lowercase names
  (``plan_cache.hits``, ``abft.scrub_rounds``, ``router.detours``,
  ``batch.active_lanes``, ...);
* :meth:`collect` walks the bound machine's attachments and returns one
  ``{name: value}`` dict;
* :meth:`snapshot` records a collection *on the simulated clock*, so a
  run's metric history lines up with its Chrome trace;
* :meth:`to_jsonl` / :meth:`counter_track_events` export the history as
  JSON Lines or as Chrome trace-event counter (``"C"``) tracks that load
  next to the span tree from :mod:`repro.obs`.

Design contract (same as the PR 2 tracer, pinned by
``tests/test_metrics.py``):

* **Null by default.**  ``machine.metrics`` is ``None`` unless attached;
  a run without the registry never imports this module.
* **Read-only.**  The registry never charges the machine and never
  mutates subsystem state; simulated ticks and every counter are
  bit-identical with metrics on or off.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, IO, List, Optional, Union

from ..errors import ConfigError

#: Environment variable that turns the registry on for new ``Session``s.
ENV_FLAG = "REPRO_METRICS"

#: JSONL schema tag written by :meth:`MetricsRegistry.to_jsonl`.
SCHEMA = "repro-metrics-v1"

#: Cap on stored snapshots: auto-snapshots (taken on phase exits) stop
#: here so a long solver loop cannot grow the history without bound.
MAX_SNAPSHOTS = 4096

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

_KINDS = ("counter", "gauge")


def env_enabled() -> bool:
    """The process-wide default from ``REPRO_METRICS`` (default: off)."""
    import os

    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


@dataclass(frozen=True)
class Metric:
    """One registered metric: its name, kind and documentation."""

    name: str
    kind: str = "counter"  # "counter" (monotone total) or "gauge" (level)
    unit: str = ""
    help: str = ""


class MetricsRegistry:
    """A flat metric namespace bound to one machine.

    Attach with :meth:`Hypercube.attach_metrics` (or
    ``Session(metrics=True)``, or ``REPRO_METRICS=1``).  The registry
    survives degraded-mode recovery: the session rebinds it to the
    survivor subcube and the snapshot history keeps accumulating.
    """

    def __init__(self, max_snapshots: int = MAX_SNAPSHOTS) -> None:
        if max_snapshots < 1:
            raise ConfigError(
                f"max_snapshots must be >= 1, got {max_snapshots}"
            )
        self.machine = None
        self.metrics: Dict[str, Metric] = {}
        self.snapshots: List[Dict[str, Any]] = []
        self.max_snapshots = int(max_snapshots)
        self._sink: Optional[Dict[str, float]] = None

    # -- binding --------------------------------------------------------------

    def bind(self, machine: Any) -> None:
        if self.machine is not None and self.machine is not machine:
            raise ConfigError(
                "metrics registry is already bound to a different machine"
            )
        self.machine = machine

    def rebind(self, machine: Any) -> None:
        """Re-bind to a replacement machine (degraded-mode recovery)."""
        self.machine = machine

    # -- publication ----------------------------------------------------------

    def register(
        self, name: str, kind: str = "counter", unit: str = "", help: str = ""
    ) -> Metric:
        """Declare a metric; idempotent, but conflicting re-declarations fail.

        Names are flat dotted lowercase (``subsystem.metric``); the first
        declaration wins and later ones must agree on kind and unit, so two
        subsystems can never silently publish different things under one
        name.
        """
        if not _NAME_RE.match(name):
            raise ConfigError(
                f"invalid metric name {name!r}: use flat dotted lowercase "
                f"like 'plan_cache.hits'"
            )
        if kind not in _KINDS:
            raise ConfigError(
                f"invalid metric kind {kind!r} for {name}: one of {_KINDS}"
            )
        existing = self.metrics.get(name)
        if existing is not None:
            if existing.kind != kind or existing.unit != unit:
                raise ConfigError(
                    f"metric {name!r} re-registered as {kind}/{unit!r} but "
                    f"is already {existing.kind}/{existing.unit!r}"
                )
            return existing
        metric = Metric(name, kind, unit, help)
        self.metrics[name] = metric
        return metric

    def publish(
        self,
        name: str,
        value: Any,
        kind: str = "counter",
        unit: str = "",
        help: str = "",
    ) -> None:
        """Record one value into the collection in progress.

        Called from subsystems' ``publish_metrics`` hooks; registers the
        metric on first publication.  Outside a collection this only
        registers (so eager declaration is harmless).
        """
        self.register(name, kind, unit, help)
        if self._sink is not None:
            self._sink[name] = float(value)

    # -- collection -----------------------------------------------------------

    def collect_from(self, *publishers: Any) -> Dict[str, float]:
        """One collection pass over explicit publisher objects."""
        if self._sink is not None:
            raise ConfigError("metric collection is already in progress")
        self._sink = {}
        try:
            for publisher in publishers:
                publisher.publish_metrics(self)
            return self._sink
        finally:
            self._sink = None

    def collect(self) -> Dict[str, float]:
        """Walk the bound machine's attachments; returns ``{name: value}``."""
        machine = self.machine
        if machine is None:
            raise ConfigError("metrics registry is not bound to a machine")
        publishers = [machine.counters, machine.plans]
        for attachment in (machine.faults, machine.abft, machine.sanitizer):
            if attachment is not None:
                publishers.append(attachment)
        return self.collect_from(*publishers)

    # -- snapshots on the simulated clock -------------------------------------

    def _sim_time(self) -> float:
        time = self.machine.counters.time
        try:
            return float(time)
        except TypeError:
            # LaneCounters: vector-valued time; the machine clock is the
            # slowest lane (the makespan).
            return float(max(time))

    def snapshot(self, label: str = "") -> Dict[str, Any]:
        """Collect now and append to the history, stamped with sim time."""
        record = {
            "label": label,
            "sim_time": self._sim_time(),
            "values": self.collect(),
        }
        if len(self.snapshots) < self.max_snapshots:
            self.snapshots.append(record)
        return record

    def on_phase_exit(self, name: str) -> None:
        """Auto-snapshot hook called by :meth:`Hypercube.phase` on exit.

        Capped by ``max_snapshots`` — past the cap the hook is free —
        and never charges, so phase-exit sampling cannot perturb costs.
        """
        if len(self.snapshots) < self.max_snapshots:
            self.snapshot(label=f"phase:{name}")

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, dest: Union[str, "IO[str]"]) -> int:
        """Write the snapshot history as JSON Lines; returns the line count.

        The first line is a ``meta`` record (schema tag, machine shape,
        metric declarations); each following line is one snapshot.
        """
        if hasattr(dest, "write"):
            fh, owned = dest, False
        else:
            fh, owned = open(dest, "w"), True
        try:
            machine = self.machine
            meta: Dict[str, Any] = {
                "type": "meta",
                "schema": SCHEMA,
                "metrics": [
                    {
                        "name": m.name,
                        "kind": m.kind,
                        "unit": m.unit,
                        "help": m.help,
                    }
                    for m in self.metrics.values()
                ],
            }
            if machine is not None:
                meta.update(
                    p=machine.p, n=machine.n,
                    cost_model=repr(machine.cost_model),
                )
            fh.write(json.dumps(meta) + "\n")
            lines = 1
            for snap in self.snapshots:
                fh.write(json.dumps(dict(snap, type="snapshot")) + "\n")
                lines += 1
            return lines
        finally:
            if owned:
                fh.close()

    def counter_track_events(self, tid: int = 2) -> List[Dict[str, Any]]:
        """The snapshot history as Chrome trace-event counter tracks.

        Emits one ``"C"`` event per metric *group* (the name's prefix up
        to the first dot) per snapshot, so the viewer renders one stacked
        counter track per subsystem next to the span tree.  Timestamps
        are simulated ticks, monotone because the simulated clock is.
        Pass the result as ``extra_events`` to
        :func:`repro.obs.export.to_chrome_trace`.
        """
        events: List[Dict[str, Any]] = []
        if not self.snapshots:
            return events
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": "metrics"},
            }
        )
        for snap in self.snapshots:
            groups: Dict[str, Dict[str, float]] = {}
            for name, value in snap["values"].items():
                prefix, _, rest = name.partition(".")
                groups.setdefault(prefix, {})[rest] = value
            for prefix in sorted(groups):
                events.append(
                    {
                        "ph": "C",
                        "pid": 0,
                        "tid": tid,
                        "name": prefix,
                        "ts": snap["sim_time"],
                        "args": groups[prefix],
                    }
                )
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self.metrics)} metrics, "
            f"{len(self.snapshots)} snapshots)"
        )


__all__ = [
    "MetricsRegistry",
    "Metric",
    "env_enabled",
    "ENV_FLAG",
    "SCHEMA",
    "MAX_SNAPSHOTS",
]
