"""The library's exception taxonomy.

Every error the simulator raises on purpose derives from :class:`ReproError`,
so callers can catch one base class instead of fishing ``ValueError`` out of
NumPy noise.  The input-validation errors double-inherit from the built-in
they historically were (``ShapeError`` and ``EmbeddingError`` are also
``ValueError``\\ s), so existing ``except ValueError`` call sites keep
working.

Hierarchy::

    ReproError
    ├── ShapeError(ValueError)      — array extents / local shapes disagree
    ├── EmbeddingError(ValueError)  — embeddings mismatched or ill-formed
    ├── ConfigError(ValueError)     — an argument or configuration value is
    │                                 invalid (bad mode string, out-of-range
    │                                 pid/dim, negative charge, ...)
    ├── FaultError(RuntimeError)    — the simulated machine is degraded
    │   ├── NodeKilledError         — a processor died; collectives impossible
    │   ├── UnroutableError         — no healthy path exists for a message
    │   └── CorruptionError         — silent data corruption detected but
    │                                 not correctable from the checksums
    ├── CheckpointError(RuntimeError) — checkpoint contents unusable
    └── SanitizerError(RuntimeError)  — a machine invariant was violated
                                        (see repro.check.MachineSanitizer)
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional error raised by the library."""


class ShapeError(ReproError, ValueError):
    """Array extents or local shapes are inconsistent.

    Messages name the offending shapes so the failing operand is
    identifiable from the traceback alone.
    """


class EmbeddingError(ReproError, ValueError):
    """Embeddings are mismatched, ill-formed, or used out of contract.

    Messages name the embeddings involved.
    """


class ConfigError(ReproError, ValueError):
    """An argument or configuration value is invalid.

    Covers everything input-validation that is neither a shape nor an
    embedding problem: unknown mode/rule strings, out-of-range processor or
    dimension indices, negative cost charges, malformed documents.
    """


class FaultError(ReproError, RuntimeError):
    """The simulated machine cannot complete an operation due to faults."""


class NodeKilledError(FaultError):
    """A processor is dead: SIMD collectives over it are impossible.

    The resilient runner (:func:`repro.faults.run_resilient`) catches this,
    degrades the session onto the largest healthy subcube, and resumes the
    workload from its last checkpoint.
    """


class UnroutableError(FaultError):
    """No healthy path exists for a routed message (links/nodes too dead)."""


class CorruptionError(FaultError):
    """Silent data corruption was detected but cannot be corrected.

    Raised by the ABFT layer (:mod:`repro.abft`) when a checksum block
    holds more than one corrupted element, so the row × column intersection
    no longer identifies a unique repair.  The resilient runner
    (:func:`repro.faults.run_resilient`) catches this and replays the
    workload from its last checkpoint on the same (healthy) topology.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint is missing required entries or does not fit the machine."""


class SanitizerError(ReproError, RuntimeError):
    """A machine conservation/accounting invariant was violated.

    Raised by :class:`repro.check.MachineSanitizer` at the first charged
    operation whose books do not balance; the message names the invariant,
    the expected and observed quantities, and the machine state (p, epoch).
    """


__all__ = [
    "ReproError",
    "ShapeError",
    "EmbeddingError",
    "ConfigError",
    "FaultError",
    "NodeKilledError",
    "UnroutableError",
    "CorruptionError",
    "CheckpointError",
    "SanitizerError",
]
