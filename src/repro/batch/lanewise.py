"""Per-lane variants of the slice primitives for batched execution.

When lanes pivot on different rows/columns, the uniform ``extract`` /
``insert`` primitives no longer apply: lane ``k`` needs slice
``index[k]``.  These helpers perform all lanes' slice operations in one
stacked pass while charging the *exact* cost sequence the scalar
primitive charges per lane (lane-masked through the active-lanes
context), so batched lanes stay bit-identical to scalar runs.

Charge fidelity: :func:`repro.core.primitives.extract` charges one local
pass over the slice extent plus one full-share communication round per
orthogonal grid dimension (fused and unfused paths charge identically);
:func:`~repro.core.primitives.insert` charges one local pass;
:meth:`~repro.machine.hypercube.Hypercube.read_scalar` charges one
single-element bus transfer.  Each helper below replays exactly that.

Inactive lanes: indices are clamped to 0 so the stacked computation stays
in bounds; their data is either never written (:func:`lane_insert` masks
writes by the active mask) or restored by :func:`merge_lanes`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..comm.collectives import subcube_base
from ..core.arrays import DistributedMatrix, DistributedVector
from ..core.primitives import _aligned_embedding
from ..errors import ConfigError, ShapeError
from ..machine.pvar import PVar


def _lane_indices(machine, index, extent: int, act: Optional[np.ndarray]):
    """Validate per-lane indices; clamp inactive lanes to 0."""
    n_runs = machine.n_runs
    if n_runs is None:
        raise ConfigError("lanewise primitives require a batched machine")
    idx = np.asarray(index, dtype=np.int64)
    if idx.shape != (n_runs,):
        raise ShapeError(
            f"per-lane index must have shape ({n_runs},), got {idx.shape}"
        )
    if act is None:
        act = np.ones(n_runs, dtype=bool)
    else:
        act = np.asarray(act, dtype=bool)
        if act.shape != (n_runs,):
            raise ShapeError(
                f"lane mask must have shape ({n_runs},), got {act.shape}"
            )
    live = idx[act]
    if live.size and (live.min() < 0 or live.max() >= extent):
        raise IndexError(
            f"per-lane index out of range [0, {extent}) in an active lane"
        )
    return np.where(act, idx, 0), act


def _slice_owner_lanes(emb, axis: int, idx: np.ndarray):
    """Per-lane (grid coordinate, local slot) arrays of the slices."""
    if axis == 0:
        if emb.machine.plans.enabled:
            owners, slots = emb.row_owner_table()
            return owners[idx], slots[idx]
        return emb.row_layout.owner(idx), emb.row_layout.slot(idx)
    if emb.machine.plans.enabled:
        owners, slots = emb.col_owner_table()
        return owners[idx], slots[idx]
    return emb.col_layout.owner(idx), emb.col_layout.slot(idx)


def _charge_bus_read(machine) -> None:
    """Charge one single-element front-end bus read (as ``read_scalar``)."""
    time = machine._round_cost.get(1)
    if time is None:
        time = machine._round_cost[1] = machine.cost_model.comm_round(1)
    machine.counters.charge_transfer(1, 1, time)


def lane_extract(
    M: DistributedMatrix,
    axis: int,
    index,
    act: Optional[np.ndarray] = None,
) -> DistributedVector:
    """Extract slice ``index[k]`` along ``axis`` in lane ``k``.

    Returns the replicated aligned vector, exactly as the scalar
    ``extract`` with ``replicate=True`` does; charges (one local slice
    pass + one share round per orthogonal dimension) land only on the
    lanes where ``act``.
    """
    if axis not in (0, 1):
        raise ConfigError(f"axis must be 0 or 1, got {axis}")
    emb = M.embedding
    machine = emb.machine
    extent = emb.R if axis == 0 else emb.C
    idx, act = _lane_indices(machine, index, extent, act)
    owners, slots = _slice_owner_lanes(emb, axis, idx)

    data = M.pvar.data
    p = machine.p
    n_runs = machine.n_runs
    # Per-lane slot selection: lane k picks local slot slots[k].
    if axis == 0:
        sel = np.broadcast_to(
            slots[None, None, None, :], (p, 1, data.shape[2], n_runs)
        )
        local = np.take_along_axis(data, sel, axis=1)[:, 0]
    else:
        sel = np.broadcast_to(
            slots[None, None, None, :], (p, data.shape[1], 1, n_runs)
        )
        local = np.take_along_axis(data, sel, axis=2)[:, :, 0]

    vec_emb = _aligned_embedding(emb, axis, None)
    across = vec_emb.across_dims
    if across:
        # Per-lane broadcast-replay: lane k's root band sits at the pid
        # whose ``across`` bits carry the node code of its owning grid
        # coordinate (cf. ``_root_pid_map``); gather each lane from its
        # own roots.
        codes = np.asarray(emb.code(owners), dtype=np.int64)
        base = subcube_base(machine, across)
        spread = np.zeros(n_runs, dtype=np.int64)
        for j, d in enumerate(across):
            spread |= ((codes >> j) & 1) << d
        root_map = base[:, None] | spread[None, :]  # (p, n_runs)
        sel = np.broadcast_to(root_map[:, None, :], local.shape)
        out = np.take_along_axis(local, sel, axis=0)
    else:
        out = np.ascontiguousarray(local)

    with machine.lanes(act):
        machine.charge_local(local.shape[1])
        share = max(local.shape[1], 1)
        for d in across:
            machine.charge_comm_round(share, dim=d)
    return M._vector_cls(PVar(machine, out), vec_emb)


def lane_insert(
    M: DistributedMatrix,
    axis: int,
    index,
    vec: DistributedVector,
    act: Optional[np.ndarray] = None,
) -> DistributedMatrix:
    """Write ``vec`` into slice ``index[k]`` along ``axis`` in lane ``k``.

    ``vec`` must be replicated and aligned with the slice (the form
    :func:`lane_extract` returns).  Lanes outside ``act`` keep their
    matrix data untouched and charge nothing.
    """
    if axis not in (0, 1):
        raise ConfigError(f"axis must be 0 or 1, got {axis}")
    emb = M.embedding
    machine = emb.machine
    extent = emb.R if axis == 0 else emb.C
    idx, act = _lane_indices(machine, index, extent, act)
    target = _aligned_embedding(emb, axis, None)
    if not vec.embedding.compatible(target):
        raise ConfigError(
            "lane_insert requires a replicated aligned vector (as returned "
            "by lane_extract); remap before inserting"
        )
    owners, slots = _slice_owner_lanes(emb, axis, idx)

    grid_r, grid_c = emb.grid_coords()
    grid = grid_r if axis == 0 else grid_c
    band = grid[:, None] == owners[None, :]  # (p, n_runs)
    data = M.pvar.data
    if axis == 0:
        lr = data.shape[1]
        slotm = np.arange(lr)[:, None] == slots[None, :]  # (lr, n_runs)
        writemask = (
            band[:, None, None, :]
            & slotm[None, :, None, :]
            & act[None, None, None, :]
        )
        out = np.where(writemask, np.expand_dims(vec.pvar.data, 1), data)
    else:
        lc = data.shape[2]
        slotm = np.arange(lc)[:, None] == slots[None, :]
        writemask = (
            band[:, None, None, :]
            & slotm[None, None, :, :]
            & act[None, None, None, :]
        )
        out = np.where(writemask, np.expand_dims(vec.pvar.data, 2), data)

    with machine.lanes(act):
        machine.charge_local(vec.pvar.local_size)
    return type(M)(PVar(machine, out), emb)


def lane_get_global(
    vec: DistributedVector,
    index,
    act: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fetch element ``index[k]`` of lane ``k`` to the host.

    One charged bus read (as the scalar ``get_global``), lane-masked.
    Returns an ``(n_runs,)`` array; inactive lanes hold element 0.
    """
    machine = vec.machine
    idx, act = _lane_indices(machine, index, len(vec), act)
    pids, slots = vec.embedding.owner_slot(idx)
    lanes = np.arange(machine.n_runs)
    values = vec.pvar.data[pids, slots, lanes].copy()
    with machine.lanes(act):
        _charge_bus_read(machine)
    return values


def lane_get_global_matrix(
    M: DistributedMatrix,
    i,
    j,
    act: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fetch element ``(i[k], j[k])`` of lane ``k`` to the host."""
    machine = M.machine
    rows, cols = M.shape
    ii, act = _lane_indices(machine, i, rows, act)
    jj, _ = _lane_indices(machine, j, cols, act)
    pids, sr, sc = M.embedding.owner_slot(ii, jj)
    lanes = np.arange(machine.n_runs)
    values = M.pvar.data[pids, sr, sc, lanes].copy()
    with machine.lanes(act):
        _charge_bus_read(machine)
    return values


def merge_lanes(new, old, act: np.ndarray):
    """Keep ``new``'s data in the lanes where ``act``, ``old``'s elsewhere.

    Host-side lane bookkeeping, free of charge: the scalar path's inactive
    lanes simply would not have executed the producing operation.
    """
    machine = new.machine
    if type(new) is not type(old) or new.pvar.data.shape != old.pvar.data.shape:
        raise ConfigError("merge_lanes requires same-shaped arrays")
    mask = np.asarray(act, dtype=bool).reshape(
        (1,) * (new.pvar.data.ndim - 1) + (machine.n_runs,)
    )
    data = np.where(mask, new.pvar.data, old.pvar.data)
    return type(new)(PVar(machine, data), new.embedding)
