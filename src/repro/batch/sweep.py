"""Parameter sweeps: stack compatible configurations, fall back for the rest.

:func:`sweep` runs one workload (``'gaussian'``, ``'simplex'`` or
``'matvec'``) over a grid of configurations.  Configurations that share
an embedding signature — same cube size, same problem shape, same cost
model, no per-machine subsystems — are grouped and executed as lanes of
one :class:`~.session.BatchSession`; the rest (fault plans, sanitizer,
ABFT, tracing, non-preset cost models, simplex LPs with negative ``b``)
run on scalar :class:`~repro.core.session.Session`\\ s, with fault plans
routed through :func:`repro.faults.run_resilient`.

Every configuration's result is bit-identical either way — batching is
purely a wall-clock optimisation — so the differential oracle crosses
the two paths freely.

Each grid entry is a dict::

    {"n_dims": 6, "n": 16, "seed": 3,            # required
     "m": 8,                                      # simplex rows (default n)
     "cost_model": "cm2", "plan_cache": None,     # optional machine config
     "pivoting": "partial", "rule": "dantzig", "tol": ...,
     "A": ..., "b": ..., "c": ..., "x": ...,      # optional explicit data
     "faults": plan, "sanitize": ..., "abft": ..., "trace": ...}

Problem data defaults to a deterministic function of ``seed`` (see
:func:`make_problem`), so a scalar re-run of any entry reproduces its
lane exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from .session import BatchSession
from . import algorithms as batch_algorithms

WORKLOADS = ("gaussian", "simplex", "matvec")


def make_problem(workload: str, params: Dict) -> Dict[str, np.ndarray]:
    """Deterministic problem data for one configuration.

    Explicit ``A``/``b``/``c``/``x`` entries in ``params`` win; anything
    missing is drawn from ``default_rng(seed)`` — diagonally dominant
    systems for Gaussian elimination, bounded-feasible LPs (``b > 0``)
    for the simplex method.
    """
    n = int(params["n"])
    rng = np.random.default_rng(int(params.get("seed", 0)))
    if workload == "gaussian":
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        data = {"A": A, "b": b}
    elif workload == "simplex":
        m = int(params.get("m", n))
        data = {
            "A": rng.uniform(0.2, 1.0, (m, n)),
            "b": rng.uniform(1.0, 2.0, m),
            "c": rng.uniform(0.2, 1.0, n),
        }
    elif workload == "matvec":
        data = {
            "A": rng.standard_normal((n, n)),
            "x": rng.standard_normal(n),
        }
    else:
        raise ConfigError(f"workload must be one of {WORKLOADS}, got {workload!r}")
    for key in data:
        if key in params:
            data[key] = np.asarray(params[key], dtype=np.float64)
    return data


def _batch_signature(workload: str, params: Dict, data: Dict) -> Optional[tuple]:
    """Grouping key for stacked execution, or ``None`` for scalar fallback."""
    if any(params.get(k) for k in ("faults", "sanitize", "abft", "trace")):
        return None
    cost_model = params.get("cost_model")
    if cost_model is not None and not isinstance(cost_model, str):
        return None  # unhashable/shared instances: keep them scalar
    if workload == "simplex" and np.any(data["b"] < 0):
        return None  # needs artificials (per-lane phase I): scalar path
    if workload == "gaussian" and params.get("pivoting", "partial") not in (
        "partial",
        "none",
    ):
        return None
    shape = tuple(data["A"].shape)
    return (
        workload,
        int(params["n_dims"]),
        shape,
        cost_model,
        params.get("plan_cache"),
        params.get("pivoting", "partial"),
        params.get("rule", "dantzig"),
        params.get("tol"),
    )


def _run_batched(workload: str, entries: List[dict]) -> None:
    """Execute one compatible group as lanes of a BatchSession."""
    params0 = entries[0]["params"]
    session = BatchSession(
        int(params0["n_dims"]),
        n_runs=len(entries),
        cost_model=params0.get("cost_model"),
        plan_cache=params0.get("plan_cache"),
    )
    stack = {
        key: np.stack([e["data"][key] for e in entries])
        for key in entries[0]["data"]
    }
    tol = params0.get("tol")
    if workload == "gaussian":
        kwargs = {"pivoting": params0.get("pivoting", "partial")}
        if tol is not None:
            kwargs["tol"] = tol
        res = batch_algorithms.gaussian_solve(
            session, stack["A"], stack["b"], **kwargs
        )
        for lane, entry in enumerate(entries):
            entry["out"] = {
                "x": res.x[lane].copy(),
                "pivots": [int(v) for v in res.pivots[lane]],
                "time": float(res.cost.time[lane]),
                "cost": res.lane(lane).cost,
            }
    elif workload == "simplex":
        kwargs = {"rule": params0.get("rule", "dantzig")}
        if tol is not None:
            kwargs["tol"] = tol
        res = batch_algorithms.simplex_solve(
            session, stack["A"], stack["b"], stack["c"], **kwargs
        )
        for lane, entry in enumerate(entries):
            lane_res = res.lane(lane)
            entry["out"] = {
                "status": lane_res.status,
                "objective": lane_res.objective,
                "x": lane_res.x,
                "iterations": lane_res.iterations,
                "time": lane_res.cost.time,
                "cost": lane_res.cost,
            }
    else:  # matvec
        res = batch_algorithms.matvec(session, stack["A"], stack["x"])
        for lane, entry in enumerate(entries):
            entry["out"] = {
                "y": res.y[lane].copy(),
                "time": float(res.cost.time[lane]),
                "cost": res.lane_cost(lane),
            }
    for lane, entry in enumerate(entries):
        entry["out"]["batched"] = True
        entry["out"]["n_lanes"] = len(entries)
        entry["out"]["lane"] = lane


def _scalar_workload(workload: str, params: Dict, data: Dict):
    """A ``run_resilient``-shaped closure executing one scalar config."""
    tol = params.get("tol")

    def body(session, store=None):
        if workload == "gaussian":
            from ..algorithms import gaussian

            kwargs = {"pivoting": params.get("pivoting", "partial")}
            if tol is not None:
                kwargs["tol"] = tol
            M = session.matrix(data["A"])
            res = gaussian.solve(M, data["b"], **kwargs)
            return {
                "x": res.x,
                "pivots": res.pivots,
                "time": res.cost.time,
                "cost": res.cost,
            }
        if workload == "simplex":
            from ..algorithms import simplex

            kwargs = {"rule": params.get("rule", "dantzig")}
            if tol is not None:
                kwargs["tol"] = tol
            res = simplex.solve(
                session.machine, data["A"], data["b"], data["c"], **kwargs
            )
            return {
                "status": res.status,
                "objective": res.objective,
                "x": res.x,
                "iterations": res.iterations,
                "time": res.cost.time,
                "cost": res.cost,
            }
        from ..algorithms import matvec as mv

        M = session.matrix(data["A"])
        xv = session.row_vector(data["x"], like=M)
        res = mv.matvec(M, xv)
        return {
            "y": res.y.to_numpy(),
            "time": res.cost.time,
            "cost": res.cost,
        }

    return body


def _run_scalar(workload: str, entry: dict) -> None:
    from ..core.session import Session

    params = entry["params"]
    session = Session(
        int(params["n_dims"]),
        cost_model=params.get("cost_model"),
        plan_cache=params.get("plan_cache"),
        trace=params.get("trace"),
        faults=params.get("faults"),
        sanitize=params.get("sanitize"),
        abft=params.get("abft"),
    )
    body = _scalar_workload(workload, params, entry["data"])
    if params.get("faults") is not None:
        from ..faults.recovery import run_resilient

        report = run_resilient(session, body)
        out = report.result if report.result is not None else {}
        out = dict(out)
        out["resilience"] = report.as_dict()
    else:
        out = body(session)
    out["batched"] = False
    entry["out"] = out


def sweep(workload: str, params_grid: List[Dict]) -> List[Dict]:
    """Run ``workload`` over ``params_grid``; results in input order.

    Each returned dict carries the workload outputs (``x``/``y``,
    ``status``..., per-run simulated ``time`` and scalar ``cost``
    snapshot) plus ``batched`` (how the entry executed), and for batched
    entries the lane index and group width.
    """
    if workload not in WORKLOADS:
        raise ConfigError(
            f"workload must be one of {WORKLOADS}, got {workload!r}"
        )
    entries = []
    for index, params in enumerate(params_grid):
        data = make_problem(workload, params)
        entries.append(
            {
                "index": index,
                "params": params,
                "data": data,
                "sig": _batch_signature(workload, params, data),
            }
        )

    groups: Dict[tuple, List[dict]] = {}
    for entry in entries:
        if entry["sig"] is not None:
            groups.setdefault(entry["sig"], []).append(entry)
    for group in groups.values():
        _run_batched(workload, group)
    for entry in entries:
        if entry["sig"] is None:
            _run_scalar(workload, entry)

    results = []
    for entry in entries:
        out = entry["out"]
        out["index"] = entry["index"]
        out["workload"] = workload
        results.append(out)
    return results
