"""The batched hypercube: one machine, ``n_runs`` stacked simulations.

:class:`BatchHypercube` is a :class:`~repro.machine.hypercube.Hypercube`
whose every PVar carries a trailing run axis of extent ``n_runs`` and
whose counters are per-lane vectors (:class:`~.counters.LaneCounters`).
All collectives, primitives, embeddings and remaps are run-axis generic —
they broadcast over trailing local dimensions — so the same algorithm
text executes all lanes in lock-step.

Control-flow divergence between lanes (different pivots, different
termination steps) is handled by :meth:`lanes`: inside the context every
charge lands only on the active lanes, modelling each lane's own
simulated clock.  The data of inactive lanes is the caller's business —
the lane-masked write primitives in :mod:`.lanewise` leave it untouched.

Observability and fault subsystems (tracer, sanitizer, ABFT, fault
injection) audit *scalar* machines; attaching them here is rejected.
:func:`repro.batch.sweep` routes configurations that need them to
scalar sessions instead.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..errors import ConfigError, ShapeError
from ..machine.cost_model import CostModel
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from .counters import LaneCounters


class BatchHypercube(Hypercube):
    """A hypercube executing ``n_runs`` independent simulations at once."""

    def __init__(
        self,
        n: int,
        n_runs: int,
        cost_model: Optional[CostModel] = None,
        plan_cache: Optional[bool] = None,
    ) -> None:
        if n_runs < 1:
            raise ConfigError(f"n_runs must be >= 1, got {n_runs}")
        super().__init__(
            n, cost_model, plan_cache=plan_cache, counters=LaneCounters(n_runs)
        )
        self.n_runs = int(n_runs)

    # -- lane-masked execution ----------------------------------------------

    @contextlib.contextmanager
    def lanes(self, mask: np.ndarray) -> Iterator[None]:
        """Restrict charging to the lanes where ``mask`` is True.

        Models each lane running its own program counter: a lane that has
        already terminated (or skips a conditional phase, e.g. a row swap)
        charges nothing while the others proceed.  Contexts nest by
        conjunction.  Charging itself is free — masking costs no simulated
        time, exactly as the scalar path's host-side ``if`` costs none.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_runs,):
            raise ShapeError(
                f"lane mask must have shape ({self.n_runs},), got {mask.shape}"
            )
        counters = self.counters
        prev = counters.active
        counters.active = mask if prev is None else (prev & mask)
        try:
            yield
        finally:
            counters.active = prev

    # -- identity ------------------------------------------------------------

    def self_address(self) -> PVar:
        data = np.broadcast_to(
            self._pids[:, None], (self.p, self.n_runs)
        ).copy()
        return PVar(self, data)

    # -- PVar constructors ---------------------------------------------------

    def pvar(self, data: np.ndarray) -> PVar:
        """Wrap host data already carrying the trailing run axis.

        Shape ``(p, *local, n_runs)``; use :meth:`replicate` to stack the
        same per-processor data into every lane.
        """
        data = np.asarray(data)
        if data.ndim < 2 or data.shape[0] != self.p:
            raise ShapeError(
                f"expected shape (p={self.p}, *local, n_runs={self.n_runs}), "
                f"got {data.shape}"
            )
        return PVar(self, np.array(data))

    def replicate(self, data: np.ndarray) -> PVar:
        """Stack identical per-processor host data into every lane."""
        data = np.asarray(data)
        if data.shape[0] != self.p:
            raise ShapeError(
                f"axis 0 must be the processor axis of extent {self.p}, "
                f"got shape {data.shape}"
            )
        stacked = np.broadcast_to(
            data[..., None], data.shape + (self.n_runs,)
        ).copy()
        return PVar(self, stacked)

    def full(self, local_shape: Sequence[int], value: Any, dtype: Any = None) -> PVar:
        shape = (self.p, *local_shape, self.n_runs)
        return PVar(self, np.full(shape, value, dtype=dtype))

    def zeros(self, local_shape: Sequence[int] = (), dtype: Any = np.float64) -> PVar:
        return PVar(
            self, np.zeros((self.p, *local_shape, self.n_runs), dtype=dtype)
        )

    def ones(self, local_shape: Sequence[int] = (), dtype: Any = np.float64) -> PVar:
        return PVar(
            self, np.ones((self.p, *local_shape, self.n_runs), dtype=dtype)
        )

    # -- unsupported subsystems ---------------------------------------------

    def attach_tracer(self, tracer: Any) -> Any:
        if tracer is not None:
            raise ConfigError(
                "tracing is not supported on a BatchHypercube; "
                "trace the scalar path (lanes are bit-identical to it)"
            )
        self.tracer = None
        return None

    def attach_sanitizer(self, sanitizer: Any) -> Any:
        if sanitizer is not None:
            raise ConfigError(
                "the machine sanitizer audits scalar machines; "
                "sanitize the scalar path (lanes are bit-identical to it)"
            )
        self.sanitizer = None
        return None

    def attach_abft(self, manager: Any) -> Any:
        if manager is not None:
            raise ConfigError(
                "ABFT checksums are not supported on a BatchHypercube; "
                "repro.batch.sweep routes checksummed configs to scalar "
                "sessions"
            )
        self.abft = None
        return None

    def attach_faults(self, injector: Any) -> Any:
        if injector is not None:
            raise ConfigError(
                "fault injection is not supported on a BatchHypercube; "
                "repro.batch.sweep routes faulty configs through "
                "run_resilient on scalar sessions"
            )
        self.faults = None
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchHypercube(n={self.n}, p={self.p}, n_runs={self.n_runs}, "
            f"cost_model={self.cost_model})"
        )
