"""Per-lane cost accounting for batched simulation.

:class:`LaneCounters` keeps each cost field as an ``(n_runs,)`` vector and
adds every charge to all lanes — or, inside a
:meth:`~repro.batch.machine.BatchHypercube.lanes` context, to the active
lanes only.  A masked add performs the *same* IEEE addition per active
lane as the scalar counters would, so a lane's running totals are
bit-identical to the scalar machine executing that lane alone.

The observability-only integer fields (``plan_*``, ``abft_*``) stay
scalar: they are excluded from :class:`CostSnapshot` by contract, and the
plan cache is legitimately shared across lanes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..machine.counters import Counters, CostSnapshot


class LaneCounters(Counters):
    """Counters whose cost fields are ``(n_runs,)`` vectors.

    ``active`` is the current lane mask (``None`` = all lanes), managed
    by :meth:`BatchHypercube.lanes`.  ``snapshot()`` returns a
    :class:`CostSnapshot` of vector copies (its elementwise ``__sub__``
    works unchanged); :meth:`lane_snapshot` gives one lane's totals as an
    ordinary scalar snapshot for comparison against a scalar run.
    """

    def __init__(self, n_runs: int) -> None:
        if n_runs < 1:
            raise ConfigError(f"n_runs must be >= 1, got {n_runs}")
        super().__init__()
        self.n_runs = int(n_runs)
        self.active: Optional[np.ndarray] = None
        self._zero_lanes()

    def _zero_lanes(self) -> None:
        self.time = np.zeros(self.n_runs)
        self.flops = np.zeros(self.n_runs)
        self.elements_transferred = np.zeros(self.n_runs)
        self.comm_rounds = np.zeros(self.n_runs, dtype=np.int64)
        self.local_moves = np.zeros(self.n_runs)

    # -- charging (lane-masked) ---------------------------------------------

    def _add(self, arr: np.ndarray, amount) -> None:
        if self.active is None:
            arr += amount
        else:
            arr[self.active] += amount

    def charge_time(self, amount: float) -> None:
        if amount < 0:
            raise ConfigError(f"cannot charge negative time {amount}")
        self._add(self.time, amount)
        if self._phase_stack:
            for phase in self._phase_stack:
                arr = self.phase_times.get(phase)
                if arr is None:
                    arr = self.phase_times[phase] = np.zeros(self.n_runs)
                self._add(arr, amount)

    def charge_flops(self, count: float, time: float) -> None:
        if count < 0:
            raise ConfigError(f"cannot charge negative flop count {count}")
        self._add(self.flops, count)
        self.charge_time(time)

    def charge_transfer(self, elements: float, rounds: int, time: float) -> None:
        if elements < 0:
            raise ConfigError(
                f"cannot charge negative transfer volume {elements}"
            )
        if rounds < 0:
            raise ConfigError(f"cannot charge negative round count {rounds}")
        self._add(self.elements_transferred, elements)
        self._add(self.comm_rounds, rounds)
        self.charge_time(time)

    def charge_local(self, elements: float, time: float) -> None:
        if elements < 0:
            raise ConfigError(
                f"cannot charge negative local-move count {elements}"
            )
        self._add(self.local_moves, elements)
        self.charge_time(time)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> CostSnapshot:
        """Vector-valued snapshot; fields are ``(n_runs,)`` arrays."""
        return CostSnapshot(
            time=self.time.copy(),
            flops=self.flops.copy(),
            elements_transferred=self.elements_transferred.copy(),
            comm_rounds=self.comm_rounds.copy(),
            local_moves=self.local_moves.copy(),
        )

    def lane_snapshot(self, lane: int) -> CostSnapshot:
        """One lane's totals as an ordinary scalar snapshot."""
        return CostSnapshot(
            time=float(self.time[lane]),
            flops=float(self.flops[lane]),
            elements_transferred=float(self.elements_transferred[lane]),
            comm_rounds=int(self.comm_rounds[lane]),
            local_moves=float(self.local_moves[lane]),
        )

    def lane_phase_times(self, lane: int) -> dict:
        """One lane's per-phase time breakdown (scalar floats)."""
        return {name: float(arr[lane]) for name, arr in self.phase_times.items()}

    # -- metrics publication -------------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Vector-aware override: makespan clock, summed volumes, lane gauges."""
        registry.publish("machine.ticks", float(self.time.max()),
                         unit="ticks", help="simulated makespan (slowest lane)")
        registry.publish("machine.flops", float(self.flops.sum()),
                         unit="flops")
        registry.publish("machine.elements_transferred",
                         float(self.elements_transferred.sum()),
                         unit="elements")
        registry.publish("machine.comm_rounds",
                         float(self.comm_rounds.sum()), unit="rounds")
        registry.publish("machine.local_moves",
                         float(self.local_moves.sum()), unit="elements")
        registry.publish("batch.lanes", self.n_runs, kind="gauge")
        active = (
            self.n_runs
            if self.active is None
            else int(np.count_nonzero(self.active))
        )
        registry.publish("batch.active_lanes", active, kind="gauge")
        self._publish_observability(registry)

    def reset(self) -> None:
        self._zero_lanes()
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_evictions = 0
        self.abft_detected = 0
        self.abft_corrected = 0
        self.abft_recomputed = 0
        self.phase_times.clear()
        self._phase_stack.clear()
        self.active = None
