"""Batched ports of the paper's applications.

Each port runs ``n_runs`` independent problem instances in lock-step on a
:class:`~.session.BatchSession`, preserving bit-identity per lane with
the scalar algorithm: uniform steps execute the scalar algorithm text on
stacked arrays, and the steps where lanes diverge (pivot choices, row
swaps, termination) go through the lane-masked primitives of
:mod:`.lanewise` whose charge sequences match the scalar primitives.

* :func:`gaussian_solve` — Gaussian elimination with ``'partial'`` (or
  ``'none'``) pivoting.  The key structural fact: after the physical row
  swap the pivot row sits at position ``k`` in *every* lane, so only the
  swap itself is lane-divergent; pivot search, the rank-1 update and back
  substitution are uniform.
* :func:`simplex_solve` — the dense tableau simplex for LPs with
  ``b >= 0`` (no artificial variables, so no per-lane phase I).  Lanes
  terminate independently through a shrinking active-lane mask.
* :func:`matvec` / :func:`vecmat` — fully uniform; the scalar recipe
  runs unchanged on stacked arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..algorithms.gaussian import GaussianResult, SingularMatrixError
from ..algorithms.simplex import SimplexResult
from ..core.arrays import DistributedMatrix, DistributedVector, iota
from ..errors import ConfigError, ShapeError
from ..machine.counters import CostSnapshot
from ..machine.pvar import LaneValues
from .lanewise import (
    lane_extract,
    lane_get_global,
    lane_insert,
    merge_lanes,
)
from .session import BatchSession


def _lane_cost(cost: CostSnapshot, lane: int) -> CostSnapshot:
    """One lane of a vector-valued snapshot as a scalar snapshot."""
    return CostSnapshot(
        time=float(cost.time[lane]),
        flops=float(cost.flops[lane]),
        elements_transferred=float(cost.elements_transferred[lane]),
        comm_rounds=int(cost.comm_rounds[lane]),
        local_moves=float(cost.local_moves[lane]),
    )


# ---------------------------------------------------------------------------
# Gaussian elimination
# ---------------------------------------------------------------------------

@dataclass
class BatchGaussianResult:
    """Stacked solutions plus per-lane provenance and cost."""

    x: np.ndarray             # (n_runs, n)
    pivots: np.ndarray        # (n_runs, n) int64
    pivot_values: np.ndarray  # (n_runs, n)
    cost: CostSnapshot        # vector-valued: fields are (n_runs,) arrays

    def lane(self, lane: int) -> GaussianResult:
        """One lane's outcome in the scalar result type."""
        return GaussianResult(
            x=self.x[lane].copy(),
            pivots=[int(v) for v in self.pivots[lane]],
            cost=_lane_cost(self.cost, lane),
        )


def gaussian_solve(
    session: BatchSession,
    A: np.ndarray,
    b: np.ndarray,
    pivoting: str = "partial",
    tol: float = 1e-12,
) -> BatchGaussianResult:
    """Solve ``A[k] x = b[k]`` for every lane ``k`` in one stacked pass.

    ``A`` has shape ``(n_runs, n, n)``, ``b`` has ``(n_runs, n)``.  Raises
    :class:`SingularMatrixError` if *any* lane hits a singular step (the
    batch shares one instruction stream; filter inputs or fall back to
    scalar solves for mixed feasibility).
    """
    if pivoting not in ("partial", "none"):
        raise ConfigError(
            "batched gaussian supports pivoting 'partial' or 'none', got "
            f"{pivoting!r}"
        )
    machine = session.machine
    n_runs = machine.n_runs
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if A.ndim != 3 or A.shape[0] != n_runs or A.shape[1] != A.shape[2]:
        raise ShapeError(
            f"A must have shape (n_runs={n_runs}, n, n), got {A.shape}"
        )
    n = A.shape[1]
    if b.shape != (n_runs, n):
        raise ShapeError(
            f"b must have shape ({n_runs}, {n}), got {b.shape}"
        )

    # Augment on the host: front-end set-up, untimed (as the scalar path).
    T = session.matrix(np.concatenate([A, b[:, :, None]], axis=2))

    start = machine.snapshot()
    with machine.phase("gaussian"):
        T, pivots, pivot_values = _eliminate(T, pivoting, tol)
        x = _back_substitute(T, tol)
    return BatchGaussianResult(
        x=x,
        pivots=pivots,
        pivot_values=pivot_values,
        cost=machine.elapsed_since(start),
    )


def _eliminate(
    T: DistributedMatrix, pivoting: str, tol: float
) -> Tuple[DistributedMatrix, np.ndarray, np.ndarray]:
    machine = T.machine
    n_runs = machine.n_runs
    n = T.shape[0]
    row_iota = None
    pivots: List[np.ndarray] = []
    pivot_values: List[np.ndarray] = []

    for k in range(n):
        with machine.phase("pivot-search"):
            col = T.extract(axis=1, index=k)
            if row_iota is None:
                row_iota = iota(col.embedding)
            if pivoting == "none":
                prow = np.full(n_runs, k, dtype=np.int64)
                pval = np.asarray(col.get_global(k))
                if np.any(np.abs(pval) <= tol):
                    raise SingularMatrixError(
                        f"zero diagonal at step {k} with pivoting='none' "
                        "in some lane"
                    )
            else:
                candidates = row_iota >= k
                pval, prow = abs(col).argreduce("max", valid=candidates)
                if np.any((prow < 0) | (np.abs(pval) <= tol)):
                    raise SingularMatrixError(
                        f"no pivot above tolerance at elimination step {k} "
                        "in some lane"
                    )
        pivots.append(prow.astype(np.int64))

        if pivoting == "partial":
            swap = prow != k
            if np.any(swap):
                kk = np.full(n_runs, k, dtype=np.int64)
                with machine.phase("row-swap"):
                    rk = lane_extract(T, axis=0, index=kk, act=swap)
                    rp = lane_extract(T, axis=0, index=prow, act=swap)
                    T = lane_insert(T, axis=0, index=kk, vec=rp, act=swap)
                    T = lane_insert(T, axis=0, index=prow, vec=rk, act=swap)
        # After the swap the pivot row is physically at k in every lane,
        # so the update phase is uniform.

        with machine.phase("update"):
            pivot_row = T.extract(axis=0, index=k)
            pivot_val = np.asarray(pivot_row.get_global(k))
            pivot_values.append(pivot_val.astype(np.float64))
            col = T.extract(axis=1, index=k)
            below = row_iota > k
            mults = below.where(col / LaneValues(pivot_val), 0.0)
            T = T.sub_outer(mults, pivot_row)
            zero_col = below.where(0.0, T.extract(axis=1, index=k))
            T = T.insert(axis=1, index=k, vector=zero_col)
    return T, np.stack(pivots, axis=1), np.stack(pivot_values, axis=1)


def _back_substitute(T: DistributedMatrix, tol: float) -> np.ndarray:
    machine = T.machine
    n_runs = machine.n_runs
    n = T.shape[0]
    x = np.zeros((n_runs, n))
    with machine.phase("back-substitution"):
        rhs = T.extract(axis=1, index=n)
        row_iota = iota(rhs.embedding)
        pending = row_iota >= 0
        for k in range(n - 1, -1, -1):
            diag = np.asarray(T.get_global(k, k))
            if np.any(np.abs(diag) <= tol):
                raise SingularMatrixError(
                    f"zero diagonal at back-substitution step {k} in some lane"
                )
            xk = np.asarray(rhs.get_global(k)) / diag
            x[:, k] = xk
            pending = pending & ~row_iota.eq(k)
            if k:
                colk = T.extract(axis=1, index=k)
                rhs = rhs - pending.where(colk, 0.0) * LaneValues(xk)
    return x


# ---------------------------------------------------------------------------
# Simplex (artificial-free LPs)
# ---------------------------------------------------------------------------

@dataclass
class BatchSimplexResult:
    """Stacked LP outcomes plus per-lane provenance and cost."""

    status: np.ndarray         # (n_runs,) str
    objective: np.ndarray      # (n_runs,)
    x: np.ndarray              # (n_runs, n)
    iterations: np.ndarray     # (n_runs,) int64
    basis: np.ndarray          # (n_runs, m) int64
    cost: CostSnapshot         # vector-valued
    duals: np.ndarray = None          # (n_runs, m)
    reduced_costs: np.ndarray = None  # (n_runs, n)

    def lane(self, lane: int) -> SimplexResult:
        """One lane's outcome in the scalar result type."""
        unbounded = str(self.status[lane]) == "unbounded"
        return SimplexResult(
            status=str(self.status[lane]),
            objective=float(self.objective[lane]),
            x=self.x[lane].copy(),
            iterations=int(self.iterations[lane]),
            phase1_iterations=0,
            basis=[int(v) for v in self.basis[lane]],
            cost=_lane_cost(self.cost, lane),
            duals=None if unbounded else self.duals[lane].copy(),
            reduced_costs=(
                None if unbounded else self.reduced_costs[lane].copy()
            ),
        )


def simplex_solve(
    session: BatchSession,
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    rule: str = "dantzig",
    tol: float = 1e-9,
    max_iters: int = None,
) -> BatchSimplexResult:
    """Solve ``max c[k]·x s.t. A[k] x <= b[k], x >= 0`` per lane.

    Requires ``b >= 0`` everywhere (the all-slack basis is feasible, so
    there is no per-lane phase I); :func:`repro.batch.sweep` routes LPs
    with negative ``b`` to scalar sessions.  Lanes reach optimality or
    unboundedness independently: a finished lane stops charging while the
    others keep pivoting.
    """
    if rule not in ("dantzig", "bland"):
        raise ConfigError(f"rule must be 'dantzig' or 'bland', got {rule!r}")
    machine = session.machine
    n_runs = machine.n_runs
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if A.ndim != 3 or A.shape[0] != n_runs:
        raise ShapeError(
            f"A must have shape (n_runs={n_runs}, m, n), got {A.shape}"
        )
    m, n = A.shape[1], A.shape[2]
    if b.shape != (n_runs, m) or c.shape != (n_runs, n):
        raise ShapeError(
            f"shape mismatch: A {A.shape}, b {b.shape}, c {c.shape}"
        )
    if np.any(b < 0):
        raise ConfigError(
            "batched simplex requires b >= 0 in every lane (artificial-free"
            "); route general LPs through repro.batch.sweep"
        )

    # Host tableau per lane: [A | I | b] with the z-row below (untimed
    # front-end set-up, as the scalar path).
    width = n + m + 1
    host = np.zeros((n_runs, m + 1, width))
    host[:, :m, :n] = A
    host[:, :m, n : n + m] = np.eye(m)
    host[:, :m, -1] = b
    host[:, m, :n] = -c
    T = session.matrix(host)

    basis = np.tile(np.arange(n, n + m, dtype=np.int64), (n_runs, 1))
    if max_iters is None:
        max_iters = 50 * (m + n)
    n_real = n + m
    obj_row = m
    rhs_col = width - 1

    active = np.ones(n_runs, dtype=bool)
    status = np.full(n_runs, "iteration_limit", dtype=object)
    iterations = np.full(n_runs, max_iters, dtype=np.int64)
    col_iota = None
    row_iota = None

    start = machine.snapshot()
    with machine.phase("simplex"):
        for it in range(max_iters):
            if not active.any():
                break
            with machine.phase("entering"), machine.lanes(active):
                obj = T.extract(axis=0, index=obj_row)
                if col_iota is None:
                    col_iota = iota(obj.embedding)
                eligible = (obj < -tol) & (col_iota < n_real)
                if rule == "dantzig":
                    _, j_arr = obj.argreduce("min", valid=eligible)
                else:  # bland: smallest eligible index
                    _, j_arr = col_iota.argreduce("min", valid=eligible)
            now_opt = active & (j_arr < 0)
            if now_opt.any():
                status[now_opt] = "optimal"
                iterations[now_opt] = it
                active = active & ~now_opt
                if not active.any():
                    break

            with machine.phase("ratio-test"), machine.lanes(active):
                col = lane_extract(T, axis=1, index=j_arr, act=active)
                if row_iota is None:
                    row_iota = iota(col.embedding)
                rhs = T.extract(axis=1, index=rhs_col)
                is_constraint = row_iota < m
                pos = (col > tol) & is_constraint
                safe = pos.where(col, 1.0)
                ratios = pos.where(rhs / safe, np.inf)
                _, r_arr = ratios.argreduce("min", valid=pos)
            now_unb = active & (r_arr < 0)
            if now_unb.any():
                status[now_unb] = "unbounded"
                iterations[now_unb] = it
                active = active & ~now_unb
                if not active.any():
                    break

            with machine.phase("pivot"), machine.lanes(active):
                T = _pivot_lanes(T, r_arr, j_arr, row_iota, active)
            rows = np.nonzero(active)[0]
            basis[rows, r_arr[rows]] = j_arr[rows]
    cost = machine.elapsed_since(start)

    # Read the solutions off the final tableau (front-end output, untimed).
    host = session.to_host(T)  # (n_runs, m+1, width)
    objective = host[:, obj_row, rhs_col].copy()
    duals = host[:, obj_row, n : n + m].copy()
    reduced_costs = host[:, obj_row, :n].copy()
    x = np.zeros((n_runs, n))
    for lane in range(n_runs):
        if status[lane] == "unbounded":
            objective[lane] = np.inf
            continue
        x_full = np.zeros(width - 1)
        x_full[basis[lane]] = host[lane, :m, rhs_col]
        x[lane] = x_full[:n]
    return BatchSimplexResult(
        status=status.astype(str),
        objective=objective,
        x=x,
        iterations=iterations,
        basis=basis,
        cost=cost,
        duals=duals,
        reduced_costs=reduced_costs,
    )


def _pivot_lanes(
    T: DistributedMatrix,
    r_arr: np.ndarray,
    j_arr: np.ndarray,
    row_iota: DistributedVector,
    act: np.ndarray,
) -> DistributedMatrix:
    """One pivot on (row ``r_arr[k]``, column ``j_arr[k]``) per active lane.

    Mirrors the scalar ``_pivot`` operation-for-operation; inactive lanes
    keep their tableau data and charge nothing.
    """
    machine = T.machine
    prow = lane_extract(T, axis=0, index=r_arr, act=act)
    pval = lane_get_global(prow, np.where(act, j_arr, 0), act=act)
    # Inactive lanes hold garbage; make the host-side reciprocal safe.
    pval = np.where(act, pval, 1.0)
    prow = prow * LaneValues(1.0 / pval)
    T = lane_insert(T, axis=0, index=r_arr, vec=prow, act=act)
    col = lane_extract(T, axis=1, index=j_arr, act=act)
    not_r = ~row_iota.eq(LaneValues(np.where(act, r_arr, 0)))
    mcol = not_r.where(col, 0.0)
    T = merge_lanes(T.sub_outer(mcol, prow), T, act)
    # Pin the pivot column to an exact unit vector (as the scalar path).
    unit = row_iota.eq(LaneValues(np.where(act, r_arr, 0))).where(1.0, 0.0)
    T = lane_insert(T, axis=1, index=j_arr, vec=unit, act=act)
    return T


# ---------------------------------------------------------------------------
# Matrix-vector products (fully uniform)
# ---------------------------------------------------------------------------

@dataclass
class BatchMatvecResult:
    """Stacked products plus the vector-valued cost."""

    y: np.ndarray      # (n_runs, R) for matvec, (n_runs, C) for vecmat
    cost: CostSnapshot

    def lane_cost(self, lane: int) -> CostSnapshot:
        return _lane_cost(self.cost, lane)


def matvec(session: BatchSession, A: np.ndarray, x: np.ndarray) -> BatchMatvecResult:
    """``y[k] = A[k] @ x[k]`` per lane: the scalar recipe on stacked arrays."""
    from ..algorithms import matvec as _scalar

    M = session.matrix(A)
    xv = session.row_vector(x, like=M)
    res = _scalar.matvec(M, xv)
    return BatchMatvecResult(y=session.to_host(res.y), cost=res.cost)


def vecmat(session: BatchSession, x: np.ndarray, A: np.ndarray) -> BatchMatvecResult:
    """``y[k] = x[k] @ A[k]`` per lane."""
    from ..algorithms import matvec as _scalar

    M = session.matrix(A)
    xv = session.col_vector(x, like=M)
    res = _scalar.vecmat(xv, M)
    return BatchMatvecResult(y=session.to_host(res.y), cost=res.cost)
