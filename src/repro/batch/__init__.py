"""Batched simulation hypervisor: N independent runs as one computation.

The simulator's inner loops are NumPy passes over ``(p, *local)`` arrays;
for small problems the per-primitive Python overhead dominates the array
work.  This package amortises that overhead by stacking ``N`` independent
simulations along a trailing *run axis* — every PVar becomes
``(p, *local, N)``, every charge lands in per-lane counter vectors — and
executing the whole batch as one instruction stream.

The correctness contract is strict: every lane of a batched run is
**bit-identical** (results, simulated ticks, all counters) to the same
run executed alone on the scalar path.  The scalar path itself never
imports this package; a machine with ``n_runs is None`` pays one
attribute read per charge site and nothing else.

Entry points:

* :class:`BatchSession` — the :class:`repro.Session` surface over a
  :class:`BatchHypercube`; host arrays carry the run axis *first*
  (``(n_runs, ...)``).
* :func:`sweep` — run a parameter grid, stacking compatible
  configurations into batched sessions and falling back to scalar
  sessions (or :func:`repro.faults.run_resilient`) for the rest.
* :mod:`repro.batch.algorithms` — batched ports of Gaussian
  elimination, the (artificial-free) simplex method and matvec.

Lanes diverge in control flow (pivot choices, termination) through
*lane-masked execution*: :meth:`BatchHypercube.lanes` restricts charging
to a boolean lane mask, and :mod:`repro.batch.lanewise` provides
per-lane extract/insert/read primitives whose charge sequences match the
scalar primitives exactly.
"""

from .counters import LaneCounters
from .machine import BatchHypercube
from .session import BatchSession
from .sweep import sweep
from . import algorithms

__all__ = [
    "BatchHypercube",
    "BatchSession",
    "LaneCounters",
    "algorithms",
    "sweep",
]
