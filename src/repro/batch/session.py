"""Session facade for batched simulation.

:class:`BatchSession` mirrors the :class:`repro.Session` surface over a
:class:`~.machine.BatchHypercube`.  Host arrays carry the run axis
*first* (``(n_runs, ...)``, the natural "list of problems" layout); the
facade moves it to the internal trailing position at the embedding
boundary::

    from repro.batch import BatchSession

    s = BatchSession(n_dims=6, n_runs=16)
    A = s.matrix(np.random.rand(16, 32, 32))   # 16 stacked 32x32 systems
    x = s.vector(np.random.rand(16, 32))
    print(s.lane_report(3))                    # lane 3's accounting

Subsystems that audit or perturb a single simulated machine — tracing,
fault injection, the sanitizer, ABFT checksums — are rejected here; use
:func:`repro.batch.sweep`, which routes such configurations to scalar
sessions automatically.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ConfigError, ShapeError
from ..machine.cost_model import CostModel
from ..machine.counters import CostSnapshot
from ..core.arrays import DistributedMatrix, DistributedVector
from ..embeddings.matrix import MatrixEmbedding
from ..embeddings.vector import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from .machine import BatchHypercube


def _resolve_cost_model(cost_model):
    if isinstance(cost_model, str):
        try:
            return getattr(CostModel, cost_model)()
        except AttributeError:
            raise ConfigError(
                f"unknown cost model preset {cost_model!r}; "
                "try 'cm2', 'unit', 'latency_bound' or 'bandwidth_bound'"
            ) from None
    return cost_model


class BatchSession:
    """A batched simulated machine plus convenience factories."""

    def __init__(
        self,
        n_dims: int,
        n_runs: int,
        cost_model: Optional[Union[CostModel, str]] = None,
        plan_cache: Optional[bool] = None,
        trace: Optional[object] = None,
        faults: Optional[object] = None,
        sanitize: Optional[object] = None,
        abft: Optional[object] = None,
    ) -> None:
        for name, value in (
            ("trace", trace),
            ("faults", faults),
            ("sanitize", sanitize),
            ("abft", abft),
        ):
            if value:
                raise ConfigError(
                    f"{name} is not supported on a BatchSession; lanes are "
                    "bit-identical to scalar runs, so attach it to a scalar "
                    "Session instead (repro.batch.sweep does this "
                    "automatically)"
                )
        self.machine = BatchHypercube(
            n_dims,
            n_runs,
            _resolve_cost_model(cost_model),
            plan_cache=plan_cache,
        )

    @property
    def n_runs(self) -> int:
        return self.machine.n_runs

    # -- array factories -----------------------------------------------------

    def _host_image(self, data: np.ndarray, kind: str, ndim: int) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != ndim or data.shape[0] != self.n_runs:
            want = "(n_runs, R, C)" if ndim == 3 else "(n_runs, L)"
            raise ShapeError(
                f"batched {kind} must have shape {want} with "
                f"n_runs={self.n_runs}, got {data.shape}"
            )
        # Internal convention: the run axis rides last, past the matrix /
        # vector axes, so embeddings broadcast over it as a local dim.
        return np.ascontiguousarray(np.moveaxis(data, 0, -1))

    def matrix(
        self,
        data: np.ndarray,
        layout: str = "block",
        embedding: Optional[MatrixEmbedding] = None,
    ) -> DistributedMatrix:
        """Embed ``n_runs`` stacked host matrices of shape ``(n_runs, R, C)``."""
        host = self._host_image(data, "matrix", 3)
        if embedding is None:
            embedding = MatrixEmbedding.default(
                self.machine, host.shape[0], host.shape[1], layout=layout
            )
        return DistributedMatrix(embedding.scatter(host), embedding)

    def vector(self, data: np.ndarray, layout: str = "block") -> DistributedVector:
        """Embed ``n_runs`` stacked host vectors of shape ``(n_runs, L)``."""
        host = self._host_image(data, "vector", 2)
        embedding = VectorOrderEmbedding(self.machine, host.shape[0], layout)
        return DistributedVector(embedding.scatter(host), embedding)

    def row_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed stacked host vectors row-aligned (replicated) with ``like``."""
        host = self._host_image(data, "vector", 2)
        emb = RowAlignedEmbedding(like.embedding, None)
        return DistributedVector(emb.scatter(host), emb)

    def col_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed stacked host vectors column-aligned (replicated) with ``like``."""
        host = self._host_image(data, "vector", 2)
        emb = ColAlignedEmbedding(like.embedding, None)
        return DistributedVector(emb.scatter(host), emb)

    # -- host readback -------------------------------------------------------

    def to_host(self, array) -> np.ndarray:
        """Gather a distributed array with the run axis moved back to front."""
        host = array.to_numpy()
        return np.ascontiguousarray(np.moveaxis(host, -1, 0))

    # -- accounting ----------------------------------------------------------

    @property
    def time(self) -> np.ndarray:
        """Per-lane simulated time so far: an ``(n_runs,)`` array of ticks."""
        return self.machine.counters.time.copy()

    def snapshot(self) -> CostSnapshot:
        """Vector-valued snapshot (fields are ``(n_runs,)`` arrays)."""
        return self.machine.snapshot()

    def lane_snapshot(self, lane: int) -> CostSnapshot:
        """One lane's totals as an ordinary scalar snapshot."""
        return self.machine.counters.lane_snapshot(lane)

    def reset_counters(self) -> None:
        self.machine.counters.reset()

    def lane_report(self, lane: int) -> str:
        """Human-readable accounting summary for one lane."""
        c = self.machine.counters
        snap = c.lane_snapshot(lane)
        lines = [
            f"simulated machine : p={self.machine.p} (n={self.machine.n}), "
            f"lane {lane}/{self.n_runs}, cost model {self.machine.cost_model}",
            f"simulated time    : {snap.time:.1f} ticks",
            f"flops             : {snap.flops:.0f}",
            f"elements moved    : {snap.elements_transferred:.0f}",
            f"comm rounds       : {snap.comm_rounds}",
            f"local moves       : {snap.local_moves:.0f}",
        ]
        breakdown = sorted(
            c.lane_phase_times(lane).items(), key=lambda kv: -kv[1]
        )
        if breakdown:
            lines.append("phase breakdown:")
            for name, t in breakdown:
                share = 100.0 * t / snap.time if snap.time else 0.0
                lines.append(f"  {name:<24s} {t:>14.1f}  ({share:5.1f}%)")
        return "\n".join(lines)

    def report_data(self) -> dict:
        """Per-lane accounting as a JSON-serialisable dict."""
        c = self.machine.counters
        return {
            "p": self.machine.p,
            "n": self.machine.n,
            "n_runs": self.n_runs,
            "cost_model": str(self.machine.cost_model),
            "time": c.time.tolist(),
            "flops": c.flops.tolist(),
            "elements_transferred": c.elements_transferred.tolist(),
            "comm_rounds": c.comm_rounds.tolist(),
            "local_moves": c.local_moves.tolist(),
        }

    def __repr__(self) -> str:
        return (
            f"BatchSession(p={self.machine.p}, n_runs={self.n_runs}, "
            f"time=[{float(self.machine.counters.time.min()):.1f}, "
            f"{float(self.machine.counters.time.max()):.1f}])"
        )
