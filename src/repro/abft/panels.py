"""Row + column checksum panels over bit patterns.

The Huang–Abraham construction augments a distributed block with two
checksum panels: a **column panel** (one word per processor — the sum of
that processor's local slots) and a **row panel** (one word per local slot
— the sum of that slot across processors).  Corrupt a single element and
exactly one entry of each panel diverges, by the *same* delta; the
row × column intersection names the element and the delta restores it.

Floating-point sums are not associative, so checksums over *values* could
never be re-verified bit-exactly after a remap.  These panels therefore
sum the **byte image** of the block in ``Z/2**64``: every dtype (float64,
int64, bool, complex128, ...) reduces to the same uint8 lattice, a single
bit flip perturbs exactly one byte, and all arithmetic is exact.  One
64-bit checksum word per panel entry is also what the simulated machine
charges for (see :class:`~repro.abft.manager.ABFTManager`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def byte_view(data: np.ndarray) -> np.ndarray:
    """The ``(p, local_bytes)`` uint8 image of a ``(p, ...)`` block.

    A view when the block is C-contiguous (the norm — blocks are built by
    NumPy ops); otherwise a contiguous copy, which is fine for reading.
    """
    p = data.shape[0]
    flat = np.ascontiguousarray(data).reshape(p, -1)
    return flat.view(np.uint8).reshape(p, -1)


def checksum_panels(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(col_panel, row_panel)`` of a block, in ``Z/2**64``.

    ``col_panel[i]`` sums processor ``i``'s local bytes; ``row_panel[j]``
    sums byte slot ``j`` across processors.  Sums are exact uint64
    integers (they wrap mod ``2**64``, which the correction math honours).
    """
    u8 = byte_view(data)
    col = u8.sum(axis=1, dtype=np.uint64)
    row = u8.sum(axis=0, dtype=np.uint64)
    return col, row


def locate(
    data: np.ndarray, col_ref: np.ndarray, row_ref: np.ndarray
) -> Tuple[str, Optional[tuple]]:
    """Diagnose a block against its reference panels.

    Returns one of::

        ("clean",  None)
        ("single", (pid, byte_slot, delta))   # uniquely correctable
        ("multi",  (bad_cols, bad_rows))      # >= 2 corrupt -> escalate

    The single-corruption case requires exactly one divergent entry in
    *each* panel with matching deltas — the row × column intersection.
    """
    col, row = checksum_panels(data)
    with np.errstate(over="ignore"):
        dc = col - col_ref
        dr = row - row_ref
    bad_c = np.flatnonzero(dc)
    bad_r = np.flatnonzero(dr)
    if bad_c.size == 0 and bad_r.size == 0:
        return "clean", None
    if bad_c.size == 1 and bad_r.size == 1 and dc[bad_c[0]] == dr[bad_r[0]]:
        return "single", (int(bad_c[0]), int(bad_r[0]), np.uint64(dc[bad_c[0]]))
    return "multi", (int(bad_c.size), int(bad_r.size))


def correct_single(
    data: np.ndarray, pid: int, byte_slot: int, delta: np.uint64
) -> np.ndarray:
    """A copy of ``data`` with byte ``(pid, byte_slot)`` restored exactly.

    ``delta = corrupted - original  (mod 2**64)`` comes from
    :func:`locate`; subtracting it mod 256 recovers the original byte
    bit-for-bit, so the repaired block equals the pre-corruption block
    exactly (``np.array_equal``), whatever the dtype.
    """
    fixed = np.array(data)
    u8 = fixed.reshape(fixed.shape[0], -1).view(np.uint8).reshape(
        fixed.shape[0], -1
    )
    with np.errstate(over="ignore"):
        u8[pid, byte_slot] = np.uint8(
            (np.uint64(u8[pid, byte_slot]) - np.uint64(delta))
            & np.uint64(0xFF)
        )
    return fixed


__all__ = ["byte_view", "checksum_panels", "locate", "correct_single"]
