"""The ABFT manager: checksum registry, verification, correction, scrubbing.

The manager owns the mapping from protected :class:`~repro.machine.pvar.PVar`
blocks to their reference checksum panels (:mod:`repro.abft.panels`) and
implements the algorithm-based fault-tolerance protocol:

* **protect** — computed when a checksum-embedded array is constructed.
  Charged as one local fold of the block into the column word plus an
  ``n``-round tree exchange building the row panel ("abft-maintain").
* **guard** — runs before any operation *reads* a protected block.  One
  shared one-word agreement round (the only point where the fault injector
  can fire) followed by a two-panel recompute per block ("abft-verify").
* **correct** — a single divergent byte is restored exactly from the
  row × column intersection; one local repair pass plus a re-verify.
* **escalate** — two or more corrupt bytes in one block are uncorrectable:
  :class:`~repro.errors.CorruptionError` propagates to
  :func:`repro.faults.run_resilient`, which replays from the last
  checkpoint on the same (healthy) topology.
* **scrub** — an optional periodic sweep verifying every registered block,
  bounding the latency between corruption and detection even for blocks
  the workload is not currently reading.

Every cost lands on the simulated clock via the machine's ordinary charge
entry points; detections/corrections/escalations are mirrored into
``machine.counters`` (observability-only fields) and the tracer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from ..errors import ConfigError, CorruptionError
from .panels import byte_view, checksum_panels, correct_single, locate


def _batched_clean(entries: List[Tuple[Any, np.ndarray, np.ndarray]]) -> np.ndarray:
    """Per-entry clean flags, computed in one stacked byte pass.

    All registered blocks share the machine's processor axis, so their
    byte images concatenate into one ``(p, total_bytes)`` array: one
    segmented column reduction and one row sum diagnose every block at
    once.  A block is clean exactly when :func:`~repro.abft.panels.locate`
    would say so — both panels match bit-for-bit mod ``2**64``.
    """
    views = [byte_view(pv.data) for pv, _, _ in entries]
    widths = np.array([v.shape[1] for v in views], dtype=np.intp)
    if len(entries) < 2 or widths.min() == 0:
        # Degenerate registries: let the per-block path diagnose.
        return np.zeros(len(entries), dtype=bool)
    u8 = np.concatenate(views, axis=1)
    offsets = np.concatenate(([0], np.cumsum(widths)[:-1]))
    cols = np.add.reduceat(u8, offsets, axis=1, dtype=np.uint64)
    rows = u8.sum(axis=0, dtype=np.uint64)
    col_ref = np.stack([col for _, col, _ in entries], axis=1)
    row_ref = np.concatenate([row for _, _, row in entries])
    col_ok = (cols == col_ref).all(axis=0)
    row_ok = ~np.logical_or.reduceat(rows != row_ref, offsets)
    return col_ok & row_ok


@dataclass
class ABFTStats:
    """Running totals for the checksum layer (host-side observability)."""

    protected: int = 0
    verifies: int = 0
    detected: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    scrubs: int = 0
    wire_retransmits: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ABFTManager:
    """Checksum bookkeeping for one machine.

    Parameters
    ----------
    keep:
        Registry capacity.  Protected blocks beyond this are retired
        oldest-first, each with a final verification (guard-on-evict), so
        a corruption can never silently age out of coverage.
    scrub_interval:
        When > 0, every ``scrub_interval``-th protection triggers a
        :meth:`scrub` sweep over the whole registry.  0 disables periodic
        scrubbing (guards still verify every block an operation reads).
    """

    def __init__(self, keep: int = 128, scrub_interval: int = 0) -> None:
        if keep < 1:
            raise ConfigError(f"ABFT registry capacity must be >= 1, got {keep}")
        if scrub_interval < 0:
            raise ConfigError(
                f"scrub interval must be >= 0, got {scrub_interval}"
            )
        self.keep = keep
        self.scrub_interval = scrub_interval
        self.stats = ABFTStats()
        self.machine: Any = None
        # id(pvar) -> (pvar, col_panel, row_panel); strong references so a
        # protected block's id can never be recycled while registered.
        self._registry: "OrderedDict[int, Tuple[Any, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    # -- lifecycle -----------------------------------------------------------

    def bind(self, machine: Any) -> None:
        """Bind to ``machine`` (called by ``Hypercube.attach_abft``).

        Rebinding — e.g. degraded-mode recovery moving the session onto a
        healthy subcube — drops the registry: the old panels describe
        blocks of the old machine's shape.
        """
        if self.machine is not None and self.machine is not machine:
            self._registry.clear()
        self.machine = machine

    def reset(self) -> None:
        """Forget every protected block (checkpoint replay starts clean)."""
        self._registry.clear()

    def protected_pvars(self) -> List[Any]:
        """Registered blocks, oldest first (fault-injector targeting)."""
        return [entry[0] for entry in self._registry.values()]

    def publish_metrics(self, registry: Any) -> None:
        """Publish checksum-layer totals into a metrics registry."""
        stats = self.stats
        registry.publish("abft.protected", stats.protected)
        registry.publish("abft.verifies", stats.verifies)
        registry.publish("abft.scrub_rounds", stats.scrubs)
        registry.publish("abft.wire_retransmits", stats.wire_retransmits)
        registry.publish("abft.uncorrectable", stats.uncorrectable)
        registry.publish("abft.evictions", stats.evictions)
        registry.publish("abft.registry_blocks", len(self._registry),
                         kind="gauge")

    # -- protection ----------------------------------------------------------

    def protect(self, pvar: Any) -> None:
        """Compute and register reference panels for ``pvar``.

        The panels are computed from the block *before* any charge: the
        charges below may poll the fault injector, and a flip landing
        mid-protection must diverge from the stored reference, not be
        baked into it.
        """
        machine = self.machine
        col, row = checksum_panels(pvar.data)
        key = id(pvar)
        if key in self._registry:
            self._registry.move_to_end(key)
        self._registry[key] = (pvar, col, row)
        self.stats.protected += 1
        # Audit before any charge: the charged rounds below may poll the
        # fault injector, and a flip landing there is *supposed* to diverge
        # from the stored panels — the identity only holds right here.
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_abft_panels(machine, pvar, (col, row))
        with machine.phase("abft-maintain"):
            # Column word: one fold over the local block.  Row panel: an
            # n-round exchange accumulating per-slot sums across the cube.
            machine.charge_flops(pvar.local_size)
            machine.charge_comm_round(pvar.local_size, rounds=machine.n)
            machine.charge_flops(machine.n * pvar.local_size)
        while len(self._registry) > self.keep:
            _, (old_pv, old_col, old_row) = self._registry.popitem(last=False)
            # Guard-on-evict: verify the retiree so corruption cannot
            # escape coverage by aging out of the registry.
            self.stats.evictions += 1
            with machine.phase("abft-verify"):
                machine.charge_comm_round(1.0, rounds=machine.n)
                machine.charge_flops(2 * old_pv.local_size)
                self._check(old_pv, old_col, old_row)
        if self.scrub_interval and self.stats.protected % self.scrub_interval == 0:
            self.scrub()

    # -- verification --------------------------------------------------------

    def guard_many(self, pvars: Iterable[Any]) -> None:
        """Verify every registered block in ``pvars`` before it is read.

        One shared one-word agreement round is charged first — the single
        point where the fault injector may fire during the guard — then
        each block pays a two-panel recompute and is checked against the
        post-poll data.  The blocks' panels are recomputed in one stacked
        byte pass (:func:`_batched_clean`); only blocks whose panels
        diverge run the full per-block diagnosis.
        """
        entries = []
        seen = set()
        for pv in pvars:
            key = id(pv)
            if key in seen:
                continue
            seen.add(key)
            entry = self._registry.get(key)
            if entry is not None and entry[0] is pv:
                entries.append(entry)
        if not entries:
            return
        machine = self.machine
        with machine.phase("abft-verify"):
            machine.charge_comm_round(1.0, rounds=machine.n)
            # The injector only fires inside charged comm rounds, so the
            # data is final here; diagnose all blocks at once.
            clean = _batched_clean(entries)
            for ok, (pv, col, row) in zip(clean, entries):
                machine.charge_flops(2 * pv.local_size)
                if not ok:
                    self._check(pv, col, row)
        self.stats.verifies += len(entries)

    def scrub(self) -> int:
        """Verify every registered block; returns how many were swept."""
        machine = self.machine
        entries = list(self._registry.values())
        if not entries:
            return 0
        with machine.phase("abft-scrub"):
            machine.charge_comm_round(1.0, rounds=machine.n)
            for pv, col, row in entries:
                machine.charge_flops(2 * pv.local_size)
                self._check(pv, col, row)
        self.stats.scrubs += 1
        self.stats.verifies += len(entries)
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant("abft:scrub", "abft", blocks=len(entries))
        return len(entries)

    def _check(self, pvar: Any, col: np.ndarray, row: np.ndarray) -> None:
        """Diagnose one block; correct a single corrupt byte or escalate."""
        machine = self.machine
        status, info = locate(pvar.data, col, row)
        if status == "clean":
            return
        counters = machine.counters
        counters.abft_detected += 1
        self.stats.detected += 1
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant("abft:detect", "abft", status=status)
        if status == "single":
            pid, byte_slot, delta = info
            pvar.data = correct_single(pvar.data, pid, byte_slot, delta)
            # One local repair pass, then re-verify the repaired block.
            machine.charge_local(pvar.local_size)
            machine.charge_flops(2 * pvar.local_size)
            status2, _ = locate(pvar.data, col, row)
            if status2 != "clean":  # pragma: no cover - correction is exact
                raise CorruptionError(
                    "ABFT single-element correction failed re-verification"
                )
            counters.abft_corrected += 1
            self.stats.corrected += 1
            if tracer is not None:
                tracer.instant(
                    "abft:correct", "abft", pid=pid, byte_slot=byte_slot
                )
            return
        self.stats.uncorrectable += 1
        if tracer is not None:
            tracer.instant("abft:uncorrectable", "abft", panels=info)
        bad_cols, bad_rows = info
        raise CorruptionError(
            f"checksum block holds multiple corrupted elements "
            f"({bad_cols} column / {bad_rows} row panel entries diverge); "
            f"single-element correction is impossible — replay from the "
            f"last checkpoint"
        )

    # -- wire protection -----------------------------------------------------

    def on_wire_retransmit(self, dim: int) -> None:
        """Record a detected in-flight corruption (injector already charged
        the retransmission round)."""
        self.stats.wire_retransmits += 1
        machine = self.machine
        counters = machine.counters
        counters.abft_detected += 1
        counters.abft_corrected += 1
        self.stats.detected += 1
        self.stats.corrected += 1
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant("abft:wire-retransmit", "abft", dim=dim)


__all__ = ["ABFTManager", "ABFTStats"]
