"""Algorithm-based fault tolerance: checksum embeddings for silent-data-
corruption detection, correction and scrubbing.

Huang & Abraham's checksum technique, adapted to the simulated Boolean
cube: every checksum-embedded array block carries a column panel (one
word per processor) and a row panel (one word per local slot), summed
over the block's *byte image* in ``Z/2**64`` so re-verification is
bit-exact for any dtype.  A single corrupted element shows up as one
divergent entry in each panel with matching deltas — the intersection
names the element and the delta restores it exactly.  Two or more
corruptions in one block raise :class:`~repro.errors.CorruptionError`,
which :func:`repro.faults.run_resilient` answers by replaying from the
last checkpoint.

All checksum work — maintenance at construction, verification before
reads, correction, scrubbing, and the extra checksum word each full
exchange carries on the wire — is charged honestly on the simulated
clock.  A session without ABFT never imports this package and its cost
totals are bit-identical to a build that does not have it.

Quickstart::

    from repro import Session
    from repro.faults import FaultPlan

    plan = FaultPlan.random(n=4, seed=7, horizon=5e5, bit_flips=1)
    s = Session(4, faults=plan, abft=True)
    A = s.matrix(rng.integers(-4, 5, (24, 24)))
    ...  # corrupted element is detected and corrected in place
"""

from .arrays import ABFTMatrix, ABFTVector
from .manager import ABFTManager, ABFTStats
from .panels import byte_view, checksum_panels, correct_single, locate

__all__ = [
    "ABFTManager",
    "ABFTStats",
    "ABFTMatrix",
    "ABFTVector",
    "byte_view",
    "checksum_panels",
    "correct_single",
    "locate",
]
