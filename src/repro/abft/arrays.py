"""Checksum-embedded distributed arrays.

:class:`ABFTVector` and :class:`ABFTMatrix` are drop-in subclasses of the
core distributed arrays whose blocks carry row+column checksum panels:

* **Protection on construction** — every result block is registered with
  the machine's :class:`~repro.abft.manager.ABFTManager` the moment it is
  built, paying the maintenance charge.  Because the core API is purely
  functional (operations build new blocks, nothing mutates ``pvar.data``
  in place), construction is the single point where panels can go stale —
  so there is none.
* **Guard on read** — every method that *reads* block data first verifies
  the operand blocks (its own and any array arguments) against their
  panels, correcting a single corrupted element in place or escalating
  multi-element corruption to :class:`~repro.errors.CorruptionError`.
  Since ``type(self)`` construction propagates the subclass, whole
  algorithms (Gaussian elimination, simplex, the benchmarks) stay in the
  checksummed family end to end.

Composed operations (``matvec``, ``dot``, ``norm``, ``matmul``, ...) are
not wrapped: every primitive they call is, so their operands are guarded
exactly once per read without double charging at the composition level.
"""

from __future__ import annotations

import functools
from typing import Any, List

from ..core.arrays import DistributedMatrix, DistributedVector


def _operand_pvars(self: Any, args: tuple, kwargs: dict) -> List[Any]:
    """The PVars an operation is about to read: self's plus any array
    argument's (vectors, matrices — anything carrying a ``pvar``)."""
    pvars = [self.pvar]
    for arg in args:
        pv = getattr(arg, "pvar", None)
        if pv is not None:
            pvars.append(pv)
    for arg in kwargs.values():
        pv = getattr(arg, "pvar", None)
        if pv is not None:
            pvars.append(pv)
    return pvars


def _guarded(base: type, name: str):
    """Wrap ``base.<name>`` to verify operand checksums before the read."""
    orig = getattr(base, name)

    @functools.wraps(orig)
    def method(self, *args, **kwargs):
        manager = self.machine.abft
        if manager is not None:
            manager.guard_many(_operand_pvars(self, args, kwargs))
        return orig(self, *args, **kwargs)

    return method


class ABFTVector(DistributedVector):
    """A distributed vector whose block carries checksum panels."""

    def __init__(self, pvar, embedding) -> None:
        super().__init__(pvar, embedding)
        manager = self.machine.abft
        if manager is not None:
            manager.protect(pvar)


class ABFTMatrix(DistributedMatrix):
    """A distributed matrix whose block carries checksum panels."""

    _vector_cls = ABFTVector

    def __init__(self, pvar, embedding) -> None:
        super().__init__(pvar, embedding)
        manager = self.machine.abft
        if manager is not None:
            manager.protect(pvar)


# Reader methods: everything that touches block data directly.  Derived
# compositions (matvec/vecmat/dot/norm/trace/matmul/sum/min/max/abs/T)
# bottom out in these, so they are intentionally absent.
_VECTOR_GUARDED = (
    "_binary",
    "__neg__",
    "__abs__",
    "__invert__",
    "where",
    "as_embedding",
    "reduce",
    "argreduce",
    "scan",
    "segmented_scan",
    "distribute",
    "get_global",
    "to_numpy",
)

_MATRIX_GUARDED = (
    "_binary",
    "__neg__",
    "__abs__",
    "__invert__",
    "where",
    "as_embedding",
    "extract",
    "insert",
    "reduce",
    "argreduce",
    "transpose",
    "sub_outer",
    "diagonal",
    "scan",
    "permute",
    "get_global",
    "to_numpy",
)

for _name in _VECTOR_GUARDED:
    setattr(ABFTVector, _name, _guarded(DistributedVector, _name))
for _name in _MATRIX_GUARDED:
    setattr(ABFTMatrix, _name, _guarded(DistributedMatrix, _name))
del _name


__all__ = ["ABFTVector", "ABFTMatrix"]
