"""The paper's four vector-matrix primitives.

The four APL-like primitives operate between an embedded dense matrix and
embedded vectors, along either matrix axis (NumPy axis conventions:
``axis=0`` indexes rows, so an axis-0 slice ``A[i, :]`` is a row):

``extract(M, axis, index)``
    The index-``index`` slice along ``axis`` as a vector: ``extract(axis=0, i)``
    is row ``i`` (length ``C``), ``extract(axis=1, j)`` is column ``j``
    (length ``R``).  Implemented as a local slice copy in the grid band that
    owns the slice, followed by a subcube broadcast across the orthogonal
    grid axis (skippable with ``replicate=False``).

``insert(M, axis, index, v)``
    The matrix with ``v`` written into that slice.  If ``v`` arrives in a
    different embedding the primitive *changes its embedding* first — the
    behaviour the abstract describes ("the primitives may indicate a change
    from one embedding to another").

``distribute(v, axis)``
    The matrix whose every axis-``axis`` slice is ``v``: ``distribute(axis=0)``
    tiles a length-``C`` vector down all ``R`` rows.  A resident (or
    vector-order) source is first broadcast/remapped to the replicated
    aligned embedding; the tiling itself is one local pass.

``reduce(M, axis, op)``
    Combines along ``axis`` with an associative operator: ``reduce(axis=0)``
    combines down each column (length ``C``), ``reduce(axis=1)`` across each
    row (length ``R``).  Local tree reduce, then an all-reduce over the
    orthogonal grid subcube.  ``reduce_loc`` is the arg-max/arg-min variant
    (returning global indices) that Gaussian elimination's pivot search and
    the simplex rules need.

Cost structure (the paper's headline): with ``m = R·C`` elements on ``p``
processors all four cost ``O(m/p)`` local work plus ``O(lg p)`` exchange
rounds whose volume is one *vector* share, so for ``m > p lg p`` the
``O(m/p)`` term dominates and the processor-time product matches the serial
algorithm to a constant factor.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import comm
from ..comm.collectives import _root_pid_map
from ..comm.ops import CombineOp, get_op
from ..machine.pvar import PVar
from ..machine.router import Router
from ..obs.tracer import maybe_span
from ..embeddings.matrix import MatrixEmbedding
from ..embeddings.remap import remap_vector
from ..embeddings.vector import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorEmbedding,
    _AlignedEmbedding,
)
from ..errors import ConfigError, EmbeddingError, ShapeError

Axis = int

INT64_MAX = np.iinfo(np.int64).max


def _check_axis(axis: Axis) -> int:
    if axis not in (0, 1):
        raise ConfigError(f"axis must be 0 (rows) or 1 (columns), got {axis}")
    return axis


def _aligned_embedding(
    emb: MatrixEmbedding, axis: Axis, resident: Optional[int]
) -> _AlignedEmbedding:
    """The vector embedding aligned with an axis-``axis`` slice of ``emb``.

    Instances are value objects (immutable after construction), so they are
    memoized per (matrix signature, axis, residence) on the plan cache and
    shared across solver iterations.
    """
    plans = emb.machine.plans
    if plans.enabled:
        return plans.memo(
            ("aligned-emb", emb.signature(), axis, resident),
            lambda: (
                RowAlignedEmbedding(emb, resident)
                if axis == 0
                else ColAlignedEmbedding(emb, resident)
            ),
        )
    if axis == 0:
        return RowAlignedEmbedding(emb, resident)  # slice of a row: length C
    return ColAlignedEmbedding(emb, resident)  # slice of a column: length R


def _slice_owner(emb: MatrixEmbedding, axis: Axis, index: int) -> Tuple[int, int]:
    """(grid coordinate, local slot) of slice ``index`` along ``axis``."""
    if axis == 0:
        if not (0 <= index < emb.R):
            raise IndexError(f"row index {index} out of range [0, {emb.R})")
        if emb.machine.plans.enabled:
            owners, slots = emb.row_owner_table()
            return int(owners[index]), int(slots[index])
        return int(emb.row_layout.owner(index)), int(emb.row_layout.slot(index))
    if not (0 <= index < emb.C):
        raise IndexError(f"column index {index} out of range [0, {emb.C})")
    if emb.machine.plans.enabled:
        owners, slots = emb.col_owner_table()
        return int(owners[index]), int(slots[index])
    return int(emb.col_layout.owner(index)), int(emb.col_layout.slot(index))


# ---------------------------------------------------------------------------
# extract
# ---------------------------------------------------------------------------

def extract(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    index: int,
    replicate: bool = True,
) -> Tuple[PVar, VectorEmbedding]:
    """Extract slice ``index`` along ``axis`` as an aligned vector.

    Cost: one local slice copy in the owning grid band, then (if
    ``replicate``) ``lg`` of the orthogonal grid extent broadcast rounds of
    one local vector share each.
    """
    _check_axis(axis)
    machine = emb.machine
    with maybe_span(
        machine, "extract", "primitive",
        axis=axis, index=index, replicate=replicate,
    ):
        grid_coord, slot = _slice_owner(emb, axis, index)
        grid_r, grid_c = emb.grid_coords()

        if axis == 0:
            local = pvar.data[:, slot, :]
        else:
            local = pvar.data[:, :, slot]

        vec_emb = _aligned_embedding(emb, axis, resident=grid_coord)

        if replicate and machine.plans.enabled and vec_emb.across_dims:
            # Fused slice-copy + broadcast replay: the broadcast overwrites
            # every processor with the root band's slice, so the masked
            # intermediate is dead — gather the roots' values directly.  The
            # charge sequence (one local pass, then one full-block round per
            # orthogonal dimension) is exactly the unfused path's.
            root_pid = _root_pid_map(
                machine, vec_emb.across_dims, vec_emb.across_code(grid_coord)
            )
            machine.charge_local(local.shape[1])
            share = max(local.shape[1], 1)
            for d in vec_emb.across_dims:
                machine.charge_comm_round(share, dim=d)
            return (
                PVar(machine, local[root_pid]),
                _aligned_embedding(emb, axis, None),
            )

        in_band = (grid_r if axis == 0 else grid_c) == grid_coord
        band = in_band.reshape((machine.p,) + (1,) * (local.ndim - 1))
        out = np.where(band, local, np.zeros((), dtype=local.dtype))
        machine.charge_local(local.shape[1])
        vec = PVar(machine, out)

        if replicate:
            vec = comm.broadcast(
                machine,
                vec,
                dims=vec_emb.across_dims,
                root_rank=vec_emb.across_code(grid_coord),
            )
            vec_emb = _aligned_embedding(emb, axis, None)
        return vec, vec_emb


# ---------------------------------------------------------------------------
# insert
# ---------------------------------------------------------------------------

def insert(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    index: int,
    vec: PVar,
    vec_emb: VectorEmbedding,
) -> PVar:
    """Write ``vec`` into slice ``index`` along ``axis``; returns a new matrix.

    If the vector is not aligned with the slice (wrong alignment, wrong
    residence), the primitive changes its embedding first — a remap and/or
    broadcast charged through the router.  The write itself is one masked
    local pass over the slice.
    """
    _check_axis(axis)
    machine = emb.machine
    with maybe_span(machine, "insert", "primitive", axis=axis, index=index):
        grid_coord, slot = _slice_owner(emb, axis, index)
        expected_len = emb.C if axis == 0 else emb.R
        if vec_emb.L != expected_len:
            raise ShapeError(
                f"vector length {vec_emb.L} does not match slice length "
                f"{expected_len}"
            )

        target_emb = _aligned_embedding(emb, axis, resident=grid_coord)
        if not vec_emb.compatible(target_emb):
            if (
                isinstance(vec_emb, type(target_emb))
                and vec_emb.replicated
                and vec_emb.matrix.same_grid(emb)
            ):
                # A replicated aligned vector already has the data in the
                # target band: no motion needed.
                pass
            else:
                vec = remap_vector(vec, vec_emb, target_emb)
                vec_emb = target_emb

        grid_r, grid_c = emb.grid_coords()
        out = pvar.data.copy()
        if axis == 0:
            band = grid_r == grid_coord
            out[band, slot, :] = vec.data[band]
        else:
            band = grid_c == grid_coord
            out[band, :, slot] = vec.data[band]
        machine.charge_local(vec.local_size)
        return PVar(machine, out)


# ---------------------------------------------------------------------------
# distribute
# ---------------------------------------------------------------------------

def distribute(
    vec: PVar,
    vec_emb: VectorEmbedding,
    emb: MatrixEmbedding,
    axis: Axis,
) -> PVar:
    """The matrix whose every axis-``axis`` slice equals ``vec``.

    ``distribute(v, axis=0)`` needs ``v`` of length ``C`` and yields the
    matrix with ``M[i, :] = v`` for all rows ``i``; ``axis=1`` tiles a
    length-``R`` vector across all columns.

    The vector is brought to the *replicated aligned* embedding (remap
    and/or subcube broadcast as needed — the embedding-change behaviour),
    then tiled locally into the matrix block: one ``lr × lc`` local pass.
    """
    _check_axis(axis)
    machine = emb.machine
    with maybe_span(machine, "distribute", "primitive", axis=axis):
        expected_len = emb.C if axis == 0 else emb.R
        if vec_emb.L != expected_len:
            raise ShapeError(
                f"vector length {vec_emb.L} does not match matrix axis length "
                f"{expected_len}"
            )

        target_emb = _aligned_embedding(emb, axis, resident=None)
        if not vec_emb.compatible(target_emb):
            if (
                isinstance(vec_emb, type(target_emb))
                and not vec_emb.replicated
                and vec_emb.matrix.same_grid(emb)
            ):
                # Aligned but resident in one band: a subcube broadcast
                # suffices.
                vec = comm.broadcast(
                    machine,
                    vec,
                    dims=vec_emb.across_dims,  # type: ignore[attr-defined]
                    root_rank=vec_emb.across_code(  # type: ignore[attr-defined]
                        vec_emb.resident  # type: ignore[attr-defined]
                    ),
                )
            else:
                vec = remap_vector(vec, vec_emb, target_emb)

        lr, lc = emb.local_shape
        extra = vec.data.shape[2:]  # trailing run axis on a batched machine
        if axis == 0:
            out = np.broadcast_to(
                np.expand_dims(vec.data, 1), (machine.p, lr, lc) + extra
            ).copy()
        else:
            out = np.broadcast_to(
                np.expand_dims(vec.data, 2), (machine.p, lr, lc) + extra
            ).copy()
        machine.charge_local(lr * lc)
        return PVar(machine, out)


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------

def _masked_for_reduce(
    pvar: PVar, emb: MatrixEmbedding, op: CombineOp
) -> np.ndarray:
    """Replace padding slots with the op identity (one local pass)."""
    mask = emb.valid_mask()
    if mask.all():
        return pvar.data
    ident = op.identity(pvar.dtype)
    emb.machine.charge_local(pvar.local_size)
    if pvar.data.ndim > mask.ndim:
        mask = mask[..., None]  # broadcast over the trailing run axis
    return np.where(mask, pvar.data, ident)


def local_reduce(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    op: Union[CombineOp, str],
) -> Tuple[PVar, Tuple[int, ...], VectorEmbedding]:
    """The intra-processor half of ``reduce``: mask padding, tree-reduce the
    local block along ``axis``.

    Returns the per-processor partial vector, the cube dimensions still to
    be combined over, and the (replicated) embedding the full reduction
    will produce.  Shared by the primitive implementation (which finishes
    with a subcube all-reduce) and the naive baseline (which finishes with
    serialised band-by-band combining).
    """
    _check_axis(axis)
    op = get_op(op)
    machine = emb.machine
    data = _masked_for_reduce(pvar, emb, op)

    if axis == 1:
        # combine across columns -> length-R vector aligned with rows
        if machine.n_runs is not None:
            # The scalar path reduces its contiguous last axis, where NumPy
            # applies pairwise summation; reduce a contiguous copy with the
            # run axis moved inward so every lane reproduces that
            # accumulation order bit-for-bit.
            moved = np.ascontiguousarray(np.moveaxis(data, 2, -1))
            red = op.ufunc.reduce(moved, axis=-1)
        else:
            red = op.ufunc.reduce(data, axis=2)
        reduced = PVar(machine, red)
        machine.charge_flops(max(pvar.local_size - pvar.data.shape[1], 0))
        return reduced, emb.col_dims, _aligned_embedding(emb, 1, None)
    reduced = PVar(machine, op.ufunc.reduce(data, axis=1))
    machine.charge_flops(max(pvar.local_size - pvar.data.shape[2], 0))
    return reduced, emb.row_dims, _aligned_embedding(emb, 0, None)


def reduce(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    op: Union[CombineOp, str],
) -> Tuple[PVar, VectorEmbedding]:
    """Combine along ``axis``: ``reduce(axis=1)`` yields row totals (length R).

    Local tree reduction over the local block, then a ``lg`` orthogonal-grid
    all-reduce of one vector share per round; the result is the *replicated*
    aligned vector (every grid band holds it), ready for a subsequent
    ``distribute`` at zero communication cost.
    """
    op = get_op(op)
    machine = emb.machine
    with maybe_span(machine, "reduce", "primitive", axis=axis, op=op.name):
        reduced, dims, vec_emb = local_reduce(pvar, emb, axis, op)
        result = comm.reduce_all(machine, reduced, op, dims=dims)
        return result, vec_emb


def local_reduce_loc(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    mode: str = "max",
    valid: Optional[PVar] = None,
) -> Tuple[PVar, PVar, Tuple[int, ...], VectorEmbedding]:
    """The intra-processor half of ``reduce_loc``.

    Masks padding/invalid slots, arg-reduces the local block (ties to the
    smallest *global* index) and returns per-processor (value, index)
    partials, the cube dimensions still to combine, and the final
    embedding.  Absent candidates carry the op identity and an INT64-max
    index sentinel.
    """
    _check_axis(axis)
    if mode not in ("max", "min"):
        raise ConfigError(f"mode must be 'max' or 'min', got {mode!r}")
    op = get_op("max" if mode == "max" else "min")
    machine = emb.machine

    mask = emb.valid_mask()
    if pvar.data.ndim > mask.ndim:
        mask = mask[..., None]  # broadcast over the trailing run axis
    if valid is not None:
        if valid.local_shape != pvar.local_shape:
            raise ShapeError("valid mask must match the matrix local shape")
        mask = mask & valid.data.astype(bool)
        machine.charge_flops(pvar.local_size)
    ident = op.identity(pvar.dtype)
    data = np.where(mask, pvar.data, ident)
    machine.charge_local(pvar.local_size)

    # Global index of every local slot along the reduced axis (wired-in
    # address arithmetic: free to form, charged when moved).
    if axis == 1:
        base = emb.global_cols()[:, None, :]
        local_axis = 2
    else:
        base = emb.global_rows()[:, :, None]
        local_axis = 1
    base = base.reshape(base.shape + (1,) * (data.ndim - base.ndim))
    gidx = np.broadcast_to(base, data.shape)
    gidx = np.where(mask, gidx, INT64_MAX)

    # Local arg-reduce: a serial scan over the local block.
    if mode == "max":
        best_slot = np.argmax(data, axis=local_axis)
    else:
        best_slot = np.argmin(data, axis=local_axis)
    machine.charge_flops(pvar.local_size)
    best_val = np.take_along_axis(
        data, np.expand_dims(best_slot, local_axis), local_axis
    ).squeeze(local_axis)
    best_idx = np.take_along_axis(
        gidx, np.expand_dims(best_slot, local_axis), local_axis
    ).squeeze(local_axis)
    # argmax/argmin pick the first extremal slot, but "first local slot"
    # is not "smallest global index" under cyclic layouts or across the
    # subcube; reduce_all_loc enforces the global tie-break, and we fix the
    # local tie-break by re-scanning for the smallest index among ties.
    extreme = np.expand_dims(best_val, local_axis) == data
    tie_idx = np.where(extreme, gidx, INT64_MAX).min(axis=local_axis)
    machine.charge_flops(pvar.local_size)
    best_idx = np.where(best_val == ident, INT64_MAX, tie_idx)

    val_pv = PVar(machine, best_val)
    idx_pv = PVar(machine, best_idx)
    dims = emb.col_dims if axis == 1 else emb.row_dims
    vec_emb = _aligned_embedding(emb, 1 if axis == 1 else 0, None)
    return val_pv, idx_pv, dims, vec_emb


def reduce_loc(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    mode: str = "max",
    valid: Optional[PVar] = None,
) -> Tuple[PVar, PVar, VectorEmbedding]:
    """Arg-reduce along ``axis``: values plus *global* winning indices.

    ``reduce_loc(axis=1, mode='max')`` returns, for every row, the maximum
    entry and the global column index attaining it (ties to the smallest
    index).  ``valid`` optionally restricts candidates (a boolean PVar of
    the matrix's local shape); rows/columns with no candidate yield the
    identity value and index -1, which callers detect by index.

    This is the primitive behind Gaussian elimination's pivot search and
    both simplex pivot rules.
    """
    machine = emb.machine
    with maybe_span(machine, "reduce_loc", "primitive", axis=axis, mode=mode):
        val_pv, idx_pv, dims, vec_emb = local_reduce_loc(
            pvar, emb, axis, mode=mode, valid=valid
        )
        val_pv, idx_pv = comm.reduce_all_loc(
            machine, val_pv, idx_pv, dims=dims, mode=mode
        )
        # Slices with no valid candidate keep the sentinel; expose as -1.
        cleaned = np.where(
            idx_pv.data == INT64_MAX, -1, idx_pv.data
        )
        idx_pv = PVar(machine, cleaned)
        return val_pv, idx_pv, vec_emb


# ---------------------------------------------------------------------------
# derived (zero-communication) operations on aligned data
# ---------------------------------------------------------------------------

def rank1_update(
    pvar: PVar,
    emb: MatrixEmbedding,
    col: PVar,
    col_emb: VectorEmbedding,
    row: PVar,
    row_emb: VectorEmbedding,
    alpha: float = -1.0,
) -> PVar:
    """``M + alpha * outer(col, row)`` with aligned replicated vectors.

    ``col`` must be column-aligned (length R) and ``row`` row-aligned
    (length C), both replicated — exactly what ``extract``/``reduce``
    produce — so the update is pure local arithmetic (two flop passes, zero
    communication).  This is the whole point of the primitives: the
    elimination/pivot inner loops of Gaussian elimination and simplex
    become communication-free.
    """
    machine = emb.machine
    with maybe_span(machine, "rank1_update", "primitive", alpha=alpha):
        target_col = _aligned_embedding(emb, 1, None)
        target_row = _aligned_embedding(emb, 0, None)
        if not (col_emb.compatible(target_col) or (
            isinstance(col_emb, ColAlignedEmbedding)
            and col_emb.replicated and col_emb.matrix.same_grid(emb)
        )):
            col = remap_vector(col, col_emb, target_col)
        if not (row_emb.compatible(target_row) or (
            isinstance(row_emb, RowAlignedEmbedding)
            and row_emb.replicated and row_emb.matrix.same_grid(emb)
        )):
            row = remap_vector(row, row_emb, target_row)
        outer = col.data[:, :, None] * row.data[:, None, :]
        if outer.dtype == pvar.dtype and outer.dtype.kind == "f":
            # In-place temporaries; elementwise result is bit-identical to
            # ``data + alpha * outer`` (IEEE multiply/add are commutative).
            np.multiply(outer, alpha, out=outer)
            np.add(outer, pvar.data, out=outer)
            out = outer
        else:
            out = pvar.data + alpha * outer
        machine.charge_flops(3 * pvar.local_size)
        return PVar(machine, out)


# ---------------------------------------------------------------------------
# derived primitives: scan and permute
# ---------------------------------------------------------------------------

def scan(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    op: Union[CombineOp, str] = "sum",
    inclusive: bool = False,
) -> PVar:
    """Parallel prefix along ``axis``: ``scan(axis=1)`` scans each row.

    The scan-vector-model companion of ``reduce``: a local prefix pass over
    the block, an exclusive subcube scan of the block totals over the
    orthogonal dimensions, and a local offset pass — ``O(m/p)`` arithmetic
    plus ``lg`` rounds of one vector share, identical in shape to reduce.

    Requires a *block* (consecutive) layout along the scanned axis: a
    cyclic layout interleaves the scan order across processors, for which
    no load-balanced prefix exists without a full remap.
    """
    _check_axis(axis)
    op = get_op(op)
    machine = emb.machine
    layout_kind = emb._col_layout_kind if axis == 1 else emb._row_layout_kind
    if layout_kind != "block":
        raise EmbeddingError(
            "scan requires a block layout along the scanned axis; "
            f"got {layout_kind!r}"
        )
    with maybe_span(machine, "scan", "primitive", axis=axis, op=op.name):
        data = _masked_for_reduce(pvar, emb, op)
        local_axis = 2 if axis == 1 else 1

        # local inclusive prefix + block totals
        local_incl = op.ufunc.accumulate(data, axis=local_axis)
        machine.charge_flops(pvar.local_size)
        totals = np.take(local_incl, -1, axis=local_axis)

        dims = emb.col_dims if axis == 1 else emb.row_dims
        grid_rank = emb.grid_coords()[1] if axis == 1 else emb.grid_coords()[0]
        carry = comm.scan(
            machine, PVar(machine, totals), op, dims=dims, rank=grid_rank
        )

        # fold the carry in; exclusive shifts the local prefix by one slot
        if inclusive:
            local = local_incl
        else:
            pad_shape = list(data.shape)
            pad_shape[local_axis] = 1
            ident = op.identity(pvar.dtype)
            pad = np.full(pad_shape, ident, dtype=local_incl.dtype)
            local = np.concatenate(
                [pad, np.delete(local_incl, -1, axis=local_axis)],
                axis=local_axis,
            )
            machine.charge_local(pvar.local_size)
        out = op(np.expand_dims(carry.data, local_axis), local)
        machine.charge_flops(pvar.local_size)
        return PVar(machine, out)


def permute_slices(
    pvar: PVar,
    emb: MatrixEmbedding,
    axis: Axis,
    perm: np.ndarray,
) -> PVar:
    """Reorder whole slices: ``out[perm[i], :] = M[i, :]`` for ``axis=0``.

    A permutation of matrix rows (or columns) is a data motion between the
    grid bands that own the slices, routed through the e-cube router with
    its real congestion; slices that stay within their band only pay a
    local move.  This generalises the row swap of Gaussian elimination to
    arbitrary permutations (e.g. applying a pivot permutation at the end of
    a factorisation, or bit-reversal reordering).
    """
    _check_axis(axis)
    machine = emb.machine
    extent = emb.R if axis == 0 else emb.C
    perm = np.asarray(perm)
    if perm.shape != (extent,) or not np.array_equal(
        np.sort(perm), np.arange(extent)
    ):
        raise ConfigError(f"perm must be a permutation of range({extent})")

    layout = emb.row_layout if axis == 0 else emb.col_layout
    share = emb.local_shape[1] if axis == 0 else emb.local_shape[0]

    with maybe_span(machine, "permute_slices", "primitive", axis=axis):
        # message set: one message per slice that changes grid band, of one
        # local share per processor in the band pair; the router sees the
        # per-processor traffic, so sizes are the slice share.
        src_band = np.asarray(layout.owner(np.arange(extent)))
        dst_band = np.asarray(layout.owner(perm))
        moving = src_band != dst_band
        if np.any(moving):
            if axis == 0:
                src_pid = emb.pid_for_grid(src_band[moving], emb._grid_c[0] * 0)
            # Build per-(band-pair, grid-cell) messages: every processor in
            # the source band sends its share of the slice to its
            # counterpart.
            ii = np.nonzero(moving)[0]
            srcs = []
            dsts = []
            sizes = []
            across = emb.Pc if axis == 0 else emb.Pr
            for i in ii:
                for k in range(across):
                    if axis == 0:
                        srcs.append(
                            int(np.asarray(emb.pid_for_grid(src_band[i], k)))
                        )
                        dsts.append(
                            int(np.asarray(emb.pid_for_grid(dst_band[i], k)))
                        )
                    else:
                        srcs.append(
                            int(np.asarray(emb.pid_for_grid(k, src_band[i])))
                        )
                        dsts.append(
                            int(np.asarray(emb.pid_for_grid(k, dst_band[i])))
                        )
                    sizes.append(float(share))
            Router(machine).simulate(
                np.array(srcs), np.array(dsts), np.array(sizes)
            )
        machine.charge_local(pvar.local_size)  # pack/unpack the moved slices

        # functional move through the host image (exact; see remap.py
        # rationale)
        if axis == 0:
            host = emb.gather(pvar)
            out = np.empty_like(host)
            out[perm] = host
        else:
            host = emb.gather(pvar)
            out = np.empty_like(host)
            out[:, perm] = host
        return emb.scatter(out)
