"""The paper's contribution: the four primitives and the array API."""

from . import primitives
from .arrays import DistributedMatrix, DistributedVector, iota
from .session import Session

__all__ = [
    "primitives",
    "DistributedMatrix",
    "DistributedVector",
    "iota",
    "Session",
]
