"""User-facing distributed arrays built on the four primitives.

:class:`DistributedMatrix` and :class:`DistributedVector` bundle a machine
resident :class:`~repro.machine.pvar.PVar` with its embedding and expose a
NumPy-flavoured API: elementwise arithmetic, the four vector-matrix
primitives as methods, and the derived operations (mat-vec products,
rank-1 updates, dot products) the paper's applications are written in.

Elementwise operations require *aligned* operands (same grid and layout) —
mixing embeddings is a remap, which the API makes explicit through
:meth:`DistributedVector.as_embedding` so communication never hides inside
an innocent-looking ``+``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import comm
from ..comm.ops import CombineOp, get_op
from ..errors import ConfigError, EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.pvar import PVar
from ..embeddings.matrix import MatrixEmbedding
from ..embeddings.remap import redistribute_matrix, remap_vector
from ..embeddings.remap import transpose as transpose_remap
from ..embeddings.vector import (
    VectorEmbedding,
    VectorOrderEmbedding,
    _AlignedEmbedding,
)
from . import primitives

Scalar = Union[int, float, bool, np.generic]

INT64_MAX = np.iinfo(np.int64).max


class DistributedVector:
    """A length-``L`` vector resident on the machine in some embedding."""

    def __init__(self, pvar: PVar, embedding: VectorEmbedding) -> None:
        if pvar.local_shape != embedding.local_shape:
            raise ShapeError(
                f"PVar local shape {pvar.local_shape} does not match "
                f"embedding local shape {embedding.local_shape} "
                f"({type(embedding).__name__}, L={embedding.L})"
            )
        self.pvar = pvar
        self.embedding = embedding

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        machine: Hypercube,
        vector: np.ndarray,
        embedding: Optional[VectorEmbedding] = None,
        layout: str = "block",
    ) -> "DistributedVector":
        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ShapeError(f"expected a 1-D array, got shape {vector.shape}")
        if embedding is None:
            embedding = VectorOrderEmbedding(machine, len(vector), layout)
        return cls(embedding.scatter(vector), embedding)

    def to_numpy(self) -> np.ndarray:
        return self.embedding.gather(self.pvar)

    # -- shape ------------------------------------------------------------------

    @property
    def machine(self) -> Hypercube:
        return self.embedding.machine

    def __len__(self) -> int:
        return self.embedding.L

    @property
    def dtype(self) -> np.dtype:
        return self.pvar.dtype

    # -- embedding changes ---------------------------------------------------------

    def as_embedding(self, embedding: VectorEmbedding) -> "DistributedVector":
        """Remap into another embedding (charged through the router)."""
        if self.embedding.compatible(embedding):
            return self
        return type(self)(
            remap_vector(self.pvar, self.embedding, embedding), embedding
        )

    # -- elementwise -----------------------------------------------------------------

    def _binary(self, other, fn_name: str) -> "DistributedVector":
        if isinstance(other, DistributedVector):
            if not self.embedding.compatible(other.embedding):
                raise EmbeddingError(
                    f"elementwise op on incompatible vector embeddings "
                    f"{self.embedding.signature()} vs "
                    f"{other.embedding.signature()}; remap explicitly with "
                    f"as_embedding()"
                )
            rhs: Union[PVar, Scalar] = other.pvar
        else:
            rhs = other
        out = getattr(self.pvar, fn_name)(rhs)
        return type(self)(out, self.embedding)

    def __add__(self, other) -> "DistributedVector":
        return self._binary(other, "__add__")

    def __radd__(self, other) -> "DistributedVector":
        return self._binary(other, "__radd__")

    def __sub__(self, other) -> "DistributedVector":
        return self._binary(other, "__sub__")

    def __rsub__(self, other) -> "DistributedVector":
        return self._binary(other, "__rsub__")

    def __mul__(self, other) -> "DistributedVector":
        return self._binary(other, "__mul__")

    def __rmul__(self, other) -> "DistributedVector":
        return self._binary(other, "__rmul__")

    def __truediv__(self, other) -> "DistributedVector":
        return self._binary(other, "__truediv__")

    def __rtruediv__(self, other) -> "DistributedVector":
        return self._binary(other, "__rtruediv__")

    def __neg__(self) -> "DistributedVector":
        return type(self)(-self.pvar, self.embedding)

    def __abs__(self) -> "DistributedVector":
        return type(self)(abs(self.pvar), self.embedding)

    def abs(self) -> "DistributedVector":
        return self.__abs__()

    def __lt__(self, other) -> "DistributedVector":
        return self._binary(other, "__lt__")

    def __le__(self, other) -> "DistributedVector":
        return self._binary(other, "__le__")

    def __gt__(self, other) -> "DistributedVector":
        return self._binary(other, "__gt__")

    def __ge__(self, other) -> "DistributedVector":
        return self._binary(other, "__ge__")

    def eq(self, other) -> "DistributedVector":
        return self._binary(other, "eq")

    def ne(self, other) -> "DistributedVector":
        return self._binary(other, "ne")

    def __and__(self, other) -> "DistributedVector":
        return self._binary(other, "__and__")

    def __or__(self, other) -> "DistributedVector":
        return self._binary(other, "__or__")

    def __xor__(self, other) -> "DistributedVector":
        return self._binary(other, "__xor__")

    def __invert__(self) -> "DistributedVector":
        return type(self)(~self.pvar, self.embedding)

    def where(self, if_true, if_false) -> "DistributedVector":
        """Select (this vector must be boolean)."""
        def unwrap(x):
            if isinstance(x, DistributedVector):
                if not self.embedding.compatible(x.embedding):
                    raise EmbeddingError(
                        f"where() operands must share the embedding: "
                        f"{self.embedding.signature()} vs "
                        f"{x.embedding.signature()}"
                    )
                return x.pvar
            return x
        out = self.pvar.where(unwrap(if_true), unwrap(if_false))
        return type(self)(out, self.embedding)

    # -- global reductions ---------------------------------------------------------

    def _reduce_dims(self) -> Tuple[int, ...]:
        emb = self.embedding
        if isinstance(emb, _AlignedEmbedding):
            return emb.along_dims
        return self.machine.dims

    def reduce(self, op: Union[CombineOp, str] = "sum") -> float:
        """Combine all elements; returns a host scalar (charged read)."""
        op = get_op(op)
        machine = self.machine
        mask = self.embedding.valid_mask()
        data = self.pvar.data
        if not mask.all():
            if data.ndim > mask.ndim:
                mask = mask[..., None]  # broadcast over the run axis
            data = np.where(mask, data, op.identity(self.dtype))
            machine.charge_local(self.pvar.local_size)
        if self.pvar.local_shape:
            if machine.n_runs is not None:
                # Reduce a contiguous copy with the run axis moved inward:
                # per lane this reproduces the scalar path's (pairwise)
                # accumulation order bit-for-bit.
                moved = np.ascontiguousarray(np.moveaxis(data, 1, -1))
                local = op.ufunc.reduce(moved, axis=-1)
            else:
                local = op.ufunc.reduce(data, axis=1)
            machine.charge_flops(max(self.pvar.local_size - 1, 0))
        else:
            local = data
        total = comm.reduce_all(
            machine, PVar(machine, local), op, dims=self._reduce_dims()
        )
        pid = self.embedding.owner_slot_scalar(0)[0]
        return machine.read_scalar(total, pid=pid)

    def sum(self) -> float:
        return self.reduce("sum")

    def min(self) -> float:
        return self.reduce("min")

    def max(self) -> float:
        return self.reduce("max")

    def argreduce(
        self, mode: str = "max", valid: Optional["DistributedVector"] = None
    ) -> Tuple[float, int]:
        """(extreme value, global index), ties to the smallest index.

        ``valid`` optionally restricts candidates (a boolean vector in the
        same embedding); with no candidate at all the returned index is -1.
        """
        machine = self.machine
        op = get_op("max" if mode == "max" else "min")
        mask = self.embedding.valid_mask()
        if self.pvar.data.ndim > mask.ndim:
            mask = mask[..., None]  # broadcast over the run axis
        if valid is not None:
            if not self.embedding.compatible(valid.embedding):
                raise EmbeddingError(
                    f"valid mask must share the vector's embedding: "
                    f"{self.embedding.signature()} vs "
                    f"{valid.embedding.signature()}"
                )
            mask = mask & valid.pvar.data.astype(bool)
            machine.charge_flops(self.pvar.local_size)
        ident = op.identity(self.dtype)
        data = np.where(mask, self.pvar.data, ident)
        machine.charge_local(self.pvar.local_size)
        gi = self.embedding.global_indices()
        if data.ndim > gi.ndim:
            gi = gi[..., None]
        gidx = np.where(mask, gi, INT64_MAX)
        # Local arg-reduce over the (p, capacity) block: one serial scan,
        # ties to the smallest global index.
        if mode == "max":
            best_val = data.max(axis=1)
        else:
            best_val = data.min(axis=1)
        machine.charge_flops(self.pvar.local_size)
        extreme = data == np.expand_dims(best_val, 1)
        best_idx = np.where(extreme, gidx, INT64_MAX).min(axis=1)
        machine.charge_flops(self.pvar.local_size)
        best_idx = np.where(best_val == ident, INT64_MAX, best_idx)
        val_pv, idx_pv = comm.reduce_all_loc(
            machine,
            PVar(machine, best_val),
            PVar(machine, best_idx),
            dims=self._reduce_dims(),
            mode=mode,
        )
        # One subcube member reports to the host.
        pid = self.embedding.owner_slot_scalar(0)[0]
        value = machine.read_scalar(val_pv, pid=pid)
        index = machine.read_scalar(idx_pv, pid=pid)
        if machine.n_runs is not None:
            # Batched: per-lane (value, index) vectors on the host.
            return value, np.where(index == INT64_MAX, -1, index)
        index = int(index)
        if index == INT64_MAX:
            index = -1
        return value, index

    def argmax(self) -> Tuple[float, int]:
        return self.argreduce("max")

    def argmin(self) -> Tuple[float, int]:
        return self.argreduce("min")

    def dot(self, other: "DistributedVector") -> float:
        """Inner product (elementwise multiply + reduce)."""
        return (self * other).reduce("sum")

    def norm(self, ord: Union[str, int] = 2) -> float:
        """Vector norm: ``2`` (Euclidean), ``1``, or ``'inf'``."""
        if ord == 2:
            return float(np.sqrt(self.dot(self)))
        if ord == 1:
            return abs(self).reduce("sum")
        if ord in ("inf", np.inf):
            return abs(self).reduce("max")
        raise ConfigError(f"unsupported vector norm {ord!r}")

    def get_global(self, index: int) -> float:
        """Fetch one element to the host (one charged bus read)."""
        if not (0 <= index < len(self)):
            raise IndexError(f"index {index} out of range [0, {len(self)})")
        pid, slot = self.embedding.owner_slot_scalar(index)
        row = self.machine.read_scalar(
            PVar(self.machine, self.pvar.data[:, slot]), pid=pid
        )
        return row

    # -- scans -----------------------------------------------------------------------

    def _check_block_order(self) -> None:
        from ..embeddings.layout import BlockLayout
        if not isinstance(self.embedding.along_layout, BlockLayout):
            raise EmbeddingError(
                f"scans require a block (consecutive) layout, got "
                f"{type(self.embedding.along_layout).__name__} in "
                f"{self.embedding.signature()}; a cyclic layout interleaves "
                f"the scan order across processors"
            )

    def scan(
        self, op: Union[CombineOp, str] = "sum", inclusive: bool = False
    ) -> "DistributedVector":
        """Parallel prefix over the vector (exclusive by default).

        One local accumulate pass, an ``lg``-round exclusive scan of the
        block totals over the vector's subcube (in distribution order), and
        one local offset pass.  Requires a block layout.
        """
        self._check_block_order()
        op = get_op(op)
        machine = self.machine
        emb = self.embedding
        mask = emb.valid_mask()
        ident = op.identity(self.dtype)
        data = self.pvar.data
        if not mask.all():
            data = np.where(mask, data, ident)
            machine.charge_local(self.pvar.local_size)
        local_incl = op.ufunc.accumulate(data, axis=1)
        machine.charge_flops(self.pvar.local_size)
        totals = local_incl[:, -1]
        carry = comm.scan(
            machine,
            PVar(machine, totals),
            op,
            dims=emb.order_dims,
            rank=emb.order_rank(),
        )
        if inclusive:
            local = local_incl
        else:
            pad = np.full((machine.p, 1), ident, dtype=local_incl.dtype)
            local = np.concatenate([pad, local_incl[:, :-1]], axis=1)
            machine.charge_local(self.pvar.local_size)
        out = op(carry.data[:, None], local)
        machine.charge_flops(self.pvar.local_size)
        return type(self)(PVar(machine, out), emb)

    def segmented_scan(self, flags: "DistributedVector") -> "DistributedVector":
        """Exclusive segmented plus-scan: restart the running sum wherever
        ``flags`` is true (``flags[i]`` marks a segment start).

        The scan-vector-model primitive: local segmented cumsum, a pair
        (value, flag) cube scan of the block summaries, then the carry is
        folded into elements before each block's first segment start.
        """
        from ..comm.segmented import local_segmented_cumsum, segmented_scan_pairs
        self._check_block_order()
        if not self.embedding.compatible(flags.embedding):
            raise EmbeddingError(
                f"flags must share the vector's embedding: "
                f"{self.embedding.signature()} vs "
                f"{flags.embedding.signature()}"
            )
        machine = self.machine
        emb = self.embedding
        mask = emb.valid_mask()
        vals = np.where(mask, self.pvar.data.astype(np.float64), 0.0)
        flgs = np.where(mask, flags.pvar.data.astype(bool), False)
        machine.charge_local(2 * self.pvar.local_size)

        local_excl = local_segmented_cumsum(vals, flgs, axis=1)
        machine.charge_flops(2 * self.pvar.local_size)

        # block summary pair under the segmented monoid: the sum of the
        # open suffix (from the last start, or the whole block) + any-flag
        csum = np.cumsum(vals, axis=1)
        positions = np.arange(vals.shape[1])
        start_idx = np.maximum.accumulate(
            np.where(flgs, positions, -1), axis=1
        )[:, -1]
        total = csum[:, -1]
        before_start = np.where(
            start_idx > 0,
            np.take_along_axis(
                csum, np.maximum(start_idx - 1, 0)[:, None], axis=1
            )[:, 0],
            0.0,
        )
        block_val = np.where(start_idx >= 0, total - before_start, total)
        block_flag = flgs.any(axis=1)
        machine.charge_flops(2 * self.pvar.local_size)

        carry_v, _carry_f = segmented_scan_pairs(
            machine,
            PVar(machine, block_val),
            PVar(machine, block_flag),
            dims=emb.order_dims,
            rank=emb.order_rank(),
        )
        # the carry applies to local positions before the first local start
        first_start = np.where(block_flag, np.argmax(flgs, axis=1), vals.shape[1])
        no_start_yet = positions[None, :] < first_start[:, None]
        out = np.where(no_start_yet, local_excl + carry_v.data[:, None], local_excl)
        machine.charge_flops(self.pvar.local_size)
        return type(self)(PVar(machine, out), emb)

    # -- the distribute primitive, vector side --------------------------------------

    def distribute(self, like: "DistributedMatrix", axis: int) -> "DistributedMatrix":
        """Tile this vector into every axis-``axis`` slice of a matrix
        shaped/embedded like ``like``."""
        out = primitives.distribute(
            self.pvar, self.embedding, like.embedding, axis
        )
        return type(like)(out, like.embedding)

    def __repr__(self) -> str:
        return f"DistributedVector(L={len(self)}, embedding={self.embedding!r})"


class DistributedMatrix:
    """An ``R × C`` dense matrix resident on the machine."""

    #: vector class produced by extract/reduce/argreduce; subclasses (the
    #: naive baseline) override this so whole algorithms stay in one family.
    _vector_cls = DistributedVector

    def __init__(self, pvar: PVar, embedding: MatrixEmbedding) -> None:
        if pvar.local_shape != embedding.local_shape:
            raise ShapeError(
                f"PVar local shape {pvar.local_shape} does not match "
                f"embedding local shape {embedding.local_shape} "
                f"({embedding.R}x{embedding.C} on {embedding.Pr}x"
                f"{embedding.Pc} grid)"
            )
        self.pvar = pvar
        self.embedding = embedding

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        machine: Hypercube,
        matrix: np.ndarray,
        embedding: Optional[MatrixEmbedding] = None,
        layout: str = "block",
    ) -> "DistributedMatrix":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got shape {matrix.shape}")
        if embedding is None:
            embedding = MatrixEmbedding.default(
                machine, matrix.shape[0], matrix.shape[1], layout=layout
            )
        return cls(embedding.scatter(matrix), embedding)

    def to_numpy(self) -> np.ndarray:
        return self.embedding.gather(self.pvar)

    # -- shape ---------------------------------------------------------------------

    @property
    def machine(self) -> Hypercube:
        return self.embedding.machine

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.embedding.R, self.embedding.C)

    @property
    def dtype(self) -> np.dtype:
        return self.pvar.dtype

    # -- elementwise ------------------------------------------------------------------

    def _binary(self, other, fn_name: str) -> "DistributedMatrix":
        if isinstance(other, DistributedMatrix):
            if other.embedding != self.embedding:
                raise EmbeddingError(
                    f"elementwise op on differently embedded matrices "
                    f"{self.embedding.signature()} vs "
                    f"{other.embedding.signature()}; redistribute explicitly "
                    f"with as_embedding()"
                )
            rhs: Union[PVar, Scalar] = other.pvar
        else:
            rhs = other
        return type(self)(getattr(self.pvar, fn_name)(rhs), self.embedding)

    def __add__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__add__")

    def __radd__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__radd__")

    def __sub__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__sub__")

    def __rsub__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__rsub__")

    def __mul__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__mul__")

    def __rmul__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__rmul__")

    def __truediv__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__truediv__")

    def __neg__(self) -> "DistributedMatrix":
        return type(self)(-self.pvar, self.embedding)

    def __abs__(self) -> "DistributedMatrix":
        return type(self)(abs(self.pvar), self.embedding)

    def abs(self) -> "DistributedMatrix":
        return self.__abs__()

    def __lt__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__lt__")

    def __le__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__le__")

    def __gt__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__gt__")

    def __ge__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__ge__")

    def eq(self, other) -> "DistributedMatrix":
        return self._binary(other, "eq")

    def ne(self, other) -> "DistributedMatrix":
        return self._binary(other, "ne")

    def __and__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__and__")

    def __or__(self, other) -> "DistributedMatrix":
        return self._binary(other, "__or__")

    def __invert__(self) -> "DistributedMatrix":
        return type(self)(~self.pvar, self.embedding)

    def where(self, if_true, if_false) -> "DistributedMatrix":
        """Select (this matrix must be boolean)."""
        def unwrap(x):
            if isinstance(x, DistributedMatrix):
                if x.embedding != self.embedding:
                    raise EmbeddingError(
                        f"where() operands must share the embedding: "
                        f"{self.embedding.signature()} vs "
                        f"{x.embedding.signature()}"
                    )
                return x.pvar
            return x
        out = self.pvar.where(unwrap(if_true), unwrap(if_false))
        return type(self)(out, self.embedding)

    def as_embedding(self, embedding: MatrixEmbedding) -> "DistributedMatrix":
        """Redistribute into another embedding (charged through the router)."""
        if embedding == self.embedding:
            return self
        return type(self)(
            redistribute_matrix(self.pvar, self.embedding, embedding), embedding
        )

    # -- the four primitives -------------------------------------------------------------

    def extract(
        self, axis: int, index: int, replicate: bool = True
    ) -> DistributedVector:
        """Primitive 1: slice ``index`` along ``axis`` as an aligned vector."""
        pv, emb = primitives.extract(
            self.pvar, self.embedding, axis, index, replicate=replicate
        )
        return self._vector_cls(pv, emb)

    def insert(
        self, axis: int, index: int, vector: DistributedVector
    ) -> "DistributedMatrix":
        """Primitive 2: a new matrix with ``vector`` written into the slice."""
        pv = primitives.insert(
            self.pvar, self.embedding, axis, index, vector.pvar, vector.embedding
        )
        return type(self)(pv, self.embedding)

    def reduce(
        self, axis: int, op: Union[CombineOp, str] = "sum"
    ) -> DistributedVector:
        """Primitive 4: combine along ``axis`` (axis=1 → row totals)."""
        pv, emb = primitives.reduce(self.pvar, self.embedding, axis, op)
        return self._vector_cls(pv, emb)

    def argreduce(
        self,
        axis: int,
        mode: str = "max",
        valid: Optional["DistributedMatrix"] = None,
    ) -> Tuple[DistributedVector, DistributedVector]:
        """Arg-variant of reduce: (values, global indices) along ``axis``."""
        valid_pv = None
        if valid is not None:
            if valid.embedding != self.embedding:
                raise EmbeddingError(
                    f"valid mask must share the matrix embedding: "
                    f"{self.embedding.signature()} vs "
                    f"{valid.embedding.signature()}"
                )
            valid_pv = valid.pvar
        val, idx, emb = primitives.reduce_loc(
            self.pvar, self.embedding, axis, mode=mode, valid=valid_pv
        )
        return self._vector_cls(val, emb), self._vector_cls(idx, emb)

    # distribute lives on DistributedVector; re-exported here for discovery.
    @staticmethod
    def distribute(
        vector: DistributedVector, like: "DistributedMatrix", axis: int
    ) -> "DistributedMatrix":
        """Primitive 3: tile ``vector`` into every axis-``axis`` slice."""
        return vector.distribute(like, axis)

    # -- derived operations -----------------------------------------------------------------

    def transpose(self, same_grid: bool = False) -> "DistributedMatrix":
        """The transposed matrix.

        By default the result lives in the *relabelled* embedding (row and
        column cube dimensions swap roles), which costs no communication;
        pass ``same_grid=True`` to keep the source's dimension assignment
        (needed to combine ``A`` and ``A.T`` elementwise), which performs
        the communicating stable dimension permutation.
        """
        pv, emb = transpose_remap(self.pvar, self.embedding, same_grid=same_grid)
        return type(self)(pv, emb)

    @property
    def T(self) -> "DistributedMatrix":
        return self.transpose()

    def matvec(self, x: DistributedVector) -> DistributedVector:
        """``y = A @ x``: distribute x across rows, multiply, reduce rows.

        ``x`` has length C; the result has length R (column-aligned,
        replicated) — three primitive applications, exactly the paper's
        matrix-vector recipe.
        """
        if len(x) != self.shape[1]:
            raise ShapeError(
                f"matvec dimension mismatch: A is {self.shape}, x has "
                f"length {len(x)}"
            )
        X = x.distribute(self, axis=0)
        return (self * X).reduce(axis=1, op="sum")

    def vecmat(self, x: DistributedVector) -> DistributedVector:
        """``y = x @ A`` (the paper's vector-matrix multiply): length-R input."""
        if len(x) != self.shape[0]:
            raise ShapeError(
                f"vecmat dimension mismatch: A is {self.shape}, x has "
                f"length {len(x)}"
            )
        X = x.distribute(self, axis=1)
        return (self * X).reduce(axis=0, op="sum")

    def sub_outer(
        self,
        col: DistributedVector,
        row: DistributedVector,
        alpha: float = 1.0,
    ) -> "DistributedMatrix":
        """``A - alpha * outer(col, row)`` — the elimination inner step."""
        pv = primitives.rank1_update(
            self.pvar,
            self.embedding,
            col.pvar,
            col.embedding,
            row.pvar,
            row.embedding,
            alpha=-alpha,
        )
        return type(self)(pv, self.embedding)

    def diagonal(self) -> DistributedVector:
        """The main diagonal as a row-aligned vector.

        A masked reduce: zero everything off the diagonal (the mask is
        wired-in address arithmetic), sum each column — one local pass plus
        one ``lg``-round reduce, whatever the layouts.
        """
        R, C = self.shape
        machine = self.machine
        emb = self.embedding
        mask = emb.global_rows()[:, :, None] == emb.global_cols()[:, None, :]
        machine.charge_flops(self.pvar.local_size)
        if self.pvar.data.ndim > mask.ndim:
            mask = mask[..., None]  # broadcast over the run axis
        masked = type(self)(
            PVar(machine, np.where(mask, self.pvar.data, 0.0)), emb
        )
        machine.charge_local(self.pvar.local_size)
        diag = masked.reduce(axis=0, op="sum")
        if R == C:
            return diag
        # rectangular: the diagonal has min(R, C) entries; trailing columns
        # (R < C) correctly reduce to zero, but for C > R nothing more is
        # needed either — callers index the first min(R, C) entries.
        return diag

    def trace(self) -> float:
        """Sum of the diagonal (host scalar; one charged read)."""
        return self.diagonal().sum()

    def norm(self, ord: Union[str, int] = "fro") -> float:
        """Matrix norm: ``'fro'``, ``1`` (max column sum) or ``'inf'``.

        Each is a primitive composition: an elementwise pass, a reduce
        along the appropriate axis, and a global max/sum.
        """
        if ord == "fro":
            sq = self * self
            return float(np.sqrt(sq.reduce(axis=1, op="sum").sum()))
        if ord == 1:
            return abs(self).reduce(axis=0, op="sum").max()
        if ord in ("inf", np.inf):
            return abs(self).reduce(axis=1, op="sum").max()
        raise ConfigError(f"unsupported matrix norm {ord!r}")

    def scan(
        self,
        axis: int,
        op: Union[CombineOp, str] = "sum",
        inclusive: bool = False,
    ) -> "DistributedMatrix":
        """Parallel prefix along ``axis`` (``scan(axis=1)`` scans each row).

        The scan-vector-model companion of :meth:`reduce`; requires a block
        layout along the scanned axis.
        """
        pv = primitives.scan(
            self.pvar, self.embedding, axis, op, inclusive=inclusive
        )
        return type(self)(pv, self.embedding)

    def permute(self, axis: int, perm: np.ndarray) -> "DistributedMatrix":
        """Reorder slices: ``out[perm[i], :] = self[i, :]`` for ``axis=0``.

        Routed through the e-cube router between grid bands; the general
        form of Gaussian elimination's row swap.
        """
        pv = primitives.permute_slices(self.pvar, self.embedding, axis, perm)
        return type(self)(pv, self.embedding)

    def matmul(self, other: "DistributedMatrix") -> "DistributedMatrix":
        """``self @ other`` by accumulated rank-1 updates.

        The outer-product formulation the primitives make natural: for each
        k, extract column k of A (column-aligned) and row k of B
        (row-aligned) and accumulate their outer product — K iterations of
        two ``lg p``-round extracts plus an ``O(m/p)`` local update, the
        grid algorithm of the Boolean-cube matrix-multiply literature.
        ``other`` is redistributed onto this matrix's grid if needed.
        """
        R, K = self.shape
        K2, C = other.shape
        if K != K2:
            raise ShapeError(
                f"matmul dimension mismatch: {self.shape} @ {other.shape}"
            )
        machine = self.machine
        emb = self.embedding
        if not other.embedding.same_grid(emb):
            target = MatrixEmbedding(
                machine, K, C,
                row_dims=emb.row_dims, col_dims=emb.col_dims,
                row_layout_kind=emb._row_layout_kind,
                col_layout_kind=emb._col_layout_kind,
                coding=emb.coding,
            )
            other = other.as_embedding(target)
        out_emb = MatrixEmbedding(
            machine, R, C,
            row_dims=emb.row_dims, col_dims=emb.col_dims,
            row_layout_kind=emb._row_layout_kind,
            col_layout_kind=emb._col_layout_kind,
            coding=emb.coding,
        )
        acc = type(self)(machine.zeros(out_emb.local_shape), out_emb)
        with machine.phase("matmul"):
            for k in range(K):
                col = self.extract(axis=1, index=k)   # length R, col-aligned
                row = other.extract(axis=0, index=k)  # length C, row-aligned
                acc = acc.sub_outer(col, row, alpha=-1.0)  # += outer(col,row)
        return acc

    def __matmul__(self, other: "DistributedMatrix") -> "DistributedMatrix":
        return self.matmul(other)

    def get_global(self, i: int, j: int) -> float:
        """Fetch one element to the host (one charged bus read)."""
        R, C = self.shape
        if not (0 <= i < R and 0 <= j < C):
            raise IndexError(f"({i}, {j}) out of range for {R}x{C}")
        pid, sr, sc = self.embedding.owner_slot_scalar(i, j)
        return self.machine.read_scalar(
            PVar(self.machine, self.pvar.data[:, sr, sc]), pid=pid
        )

    def __repr__(self) -> str:
        return (
            f"DistributedMatrix(shape={self.shape}, embedding={self.embedding!r})"
        )


def iota(embedding: VectorEmbedding) -> DistributedVector:
    """The vector ``[0, 1, ..., L-1]`` in the given embedding.

    Each processor fills its slots from its own wired-in address map, so
    this costs a single local pass and no communication.  It is the standard
    trick for turning "rows below the pivot" or "non-artificial columns"
    into a machine-resident mask.
    """
    machine = embedding.machine
    data = embedding.global_indices().astype(np.int64)
    data = np.where(embedding.valid_mask(), data, -1)
    if machine.n_runs is not None:
        # Every PVar on a batched machine carries the trailing run axis;
        # the address map is lane-invariant, so broadcast it at creation.
        data = np.broadcast_to(
            data[..., None], data.shape + (machine.n_runs,)
        ).copy()
    machine.charge_local(int(np.prod(embedding.local_shape, dtype=np.int64)))
    cls = DistributedVector
    if machine.abft is not None:
        # Masks built from iota feed straight into checksummed algorithms;
        # keep them in the protected family so their reads are guarded too.
        from ..abft.arrays import ABFTVector
        cls = ABFTVector
    return cls(PVar(machine, data), embedding)
