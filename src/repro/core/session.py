"""Session facade: one object that owns the machine and builds arrays.

A :class:`Session` is the quickstart entry point::

    from repro import Session

    s = Session(n_dims=10)                 # 1024 simulated processors
    A = s.matrix(np.random.rand(256, 256))
    x = s.vector(np.random.rand(256))
    y = A.matvec(x.as_embedding(s.row_aligned(A)))
    print(s.report())

Pass ``trace=True`` (or set ``REPRO_TRACE=1``) to record a span tree of
every primitive, collective, remap and routing operation; see
``repro.obs`` and ``docs/observability.md``.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from ..errors import ConfigError
from ..machine.cost_model import CostModel
from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..obs.tracer import Tracer, env_enabled as trace_env_enabled
from ..embeddings.matrix import MatrixEmbedding
from ..embeddings.vector import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from .arrays import DistributedMatrix, DistributedVector


class Session:
    """A simulated machine plus convenience factories."""

    def __init__(
        self,
        n_dims: int,
        cost_model: Optional[Union[CostModel, str]] = None,
        plan_cache: Optional[bool] = None,
        trace: Optional[Union[bool, Tracer]] = None,
        faults: Optional[object] = None,
        sanitize: Optional[Union[bool, object]] = None,
        abft: Optional[Union[bool, object]] = None,
        metrics: Optional[Union[bool, object]] = None,
        profile: Optional[Union[bool, object]] = None,
        retry: Optional[object] = None,
        checkpoint: Optional[object] = None,
    ) -> None:
        if isinstance(cost_model, str):
            try:
                cost_model = getattr(CostModel, cost_model)()
            except AttributeError:
                raise ConfigError(
                    f"unknown cost model preset {cost_model!r}; "
                    "try 'cm2', 'unit', 'latency_bound' or 'bandwidth_bound'"
                ) from None
        self.machine = Hypercube(n_dims, cost_model, plan_cache=plan_cache)
        # trace=None defers to the REPRO_TRACE environment variable;
        # trace may also be a pre-built Tracer to share across sessions.
        if trace is None:
            trace = trace_env_enabled()
        if isinstance(trace, Tracer):
            self.machine.attach_tracer(trace)
        elif trace:
            self.machine.attach_tracer(Tracer())
        # faults may be a FaultPlan (wrapped in a fresh injector) or a
        # pre-built FaultInjector; None (default) leaves the machine on the
        # zero-overhead healthy path.  ``retry`` customises the wrapping
        # injector's RetryPolicy (jitter/hedging for flaky links).
        if faults is not None:
            from ..faults.injector import FaultInjector
            from ..faults.plan import FaultPlan

            if isinstance(faults, FaultPlan):
                faults = FaultInjector(faults, retry=retry)
            elif retry is not None:
                raise ConfigError(
                    "retry= only applies when faults= is a FaultPlan; a "
                    "pre-built injector already carries its RetryPolicy"
                )
            self.machine.attach_faults(faults)
        elif retry is not None:
            raise ConfigError("retry= requires faults= to be set")
        # sanitize=None defers to REPRO_SANITIZE (read inline so an
        # unsanitized run never imports the check subsystem); a pre-built
        # MachineSanitizer may also be passed to share across sessions.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
                "1", "on", "true", "yes"
            )
        if sanitize:
            if isinstance(sanitize, bool):
                from ..check.sanitizer import MachineSanitizer, env_sample_every

                sanitize = MachineSanitizer(sample_every=env_sample_every())
            self.machine.attach_sanitizer(sanitize)
        # abft=True builds a fresh ABFTManager; a pre-built manager may be
        # passed to tune the registry/scrub policy.  None/False (default)
        # keeps the machine checksum-free and never imports repro.abft.
        if abft:
            if isinstance(abft, bool):
                from ..abft.manager import ABFTManager

                abft = ABFTManager()
            self.machine.attach_abft(abft)
        # metrics=None / profile=None defer to REPRO_METRICS / REPRO_PROFILE
        # (read inline so a run without them never imports repro.metrics).
        # The profiler attaches *last* so its proxy wraps an attached
        # sanitizer (see PhaseProfiler.bind).
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "").strip().lower() in (
                "1", "on", "true", "yes"
            )
        if metrics:
            if isinstance(metrics, bool):
                from ..metrics.registry import MetricsRegistry

                metrics = MetricsRegistry()
            self.machine.attach_metrics(metrics)
        if profile is None:
            profile = os.environ.get("REPRO_PROFILE", "").strip().lower() in (
                "1", "on", "true", "yes"
            )
        if profile:
            if isinstance(profile, bool):
                from ..metrics.profiler import PhaseProfiler

                profile = PhaseProfiler()
            self.machine.attach_profiler(profile)
        # checkpoint= selects the CheckpointPolicy resilient runs use (a
        # CheckpointPolicy, a strategy name, or None for the host-gather
        # default).  Stored raw and coerced lazily by CheckpointStore, so
        # a session that never checkpoints imports nothing extra.
        self.checkpoint_policy = checkpoint
        # Re-expansion ledger; created by the first degrade().
        self._expansion = None

    @property
    def tracer(self) -> Optional[Tracer]:
        """The attached :class:`~repro.obs.Tracer`, or ``None``."""
        return self.machine.tracer

    @property
    def faults(self):
        """The attached :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self.machine.faults

    @property
    def sanitizer(self):
        """The attached :class:`~repro.check.MachineSanitizer`, or ``None``."""
        return self.machine.sanitizer

    @property
    def abft(self):
        """The attached :class:`~repro.abft.ABFTManager`, or ``None``."""
        return self.machine.abft

    @property
    def metrics(self):
        """The attached :class:`~repro.metrics.MetricsRegistry`, or ``None``."""
        return self.machine.metrics

    @property
    def profiler(self):
        """The attached :class:`~repro.metrics.PhaseProfiler`, or ``None``."""
        return self.machine.profiler

    # -- degraded-mode recovery ----------------------------------------------

    def degrade(self) -> Hypercube:
        """Remap the session onto the largest healthy subcube.

        Called (normally by :func:`repro.faults.run_resilient`) after a
        :class:`~repro.errors.NodeKilledError`: builds a fresh, healthy
        machine from the surviving subcube, *sharing the parent's counters*
        so the simulated clock keeps running, re-binds the tracer and
        translates the fault injector's remaining events into subcube
        coordinates.  Distributed arrays built on the old machine are dead;
        workloads resume from their last host-side checkpoint
        (:class:`~repro.faults.CheckpointStore`).  Raises
        :class:`~repro.errors.FaultError` when no healthy subcube exists.
        """
        from ..faults.expansion import ExpansionLedger
        from ..faults.recovery import largest_healthy_subcube

        old = self.machine
        injector = old.faults
        # Re-expansion bookkeeping: the abandoned machines' health history
        # lives on in a root-coordinate ledger, and pending heal events
        # move there before translate() would drop them with the hardware
        # they target.
        if self._expansion is None:
            self._expansion = ExpansionLedger(old)
        else:
            self._expansion.sync_kills(old)
        if injector is not None:
            self._expansion.add_heal_events(injector.extract_heals())
        free_dims, base = largest_healthy_subcube(old)
        new = Hypercube(
            len(free_dims),
            old.cost_model,
            plan_cache=old.plans.enabled,
            counters=old.counters,
        )
        tracer = old.tracer
        if tracer is not None:
            tracer.instant(
                "degrade",
                "fault",
                old_p=old.p,
                new_p=new.p,
                base=base,
                free_dims=list(free_dims),
            )
            tracer.rebind(new)
            new.tracer = tracer
        if injector is not None:
            injector.translate(free_dims, base)
            new.attach_faults(injector)
        self._rebind_attachments(old, new)
        self._expansion.record_degrade(free_dims, base)
        self.machine = new
        return new

    def _rebind_attachments(self, old: Hypercube, new: Hypercube) -> None:
        """Carry sanitizer/ABFT/metrics/profiler across a machine swap."""
        sanitizer = old.sanitizer
        if sanitizer is not None:
            # The survivor charges into the parent's counters, so the
            # monotonicity audit deliberately spans the swap.
            sanitizer.rebind(new)
            new.sanitizer = sanitizer
        abft = old.abft
        if abft is not None:
            # bind() onto a different machine drops the registry: the old
            # panels describe blocks shaped for the dead machine.
            new.attach_abft(abft)
        metrics = old.metrics
        if metrics is not None:
            # The snapshot history carries across the swap (same counters,
            # same simulated clock).
            metrics.rebind(new)
            new.metrics = metrics
        profiler = old.profiler
        if profiler is not None:
            # Rebinding also rewraps the survivor's sanitizer (which is the
            # same proxy object, carried over above).
            profiler.rebind(new)
            new.profiler = profiler

    def promotion_ready(self) -> bool:
        """Whether a strictly larger healthy cube is available right now.

        Applies any heal events that have come due on the simulated clock
        to the expansion ledger, then checks three gates: the ledger is
        enabled (the session has degraded and promotion hasn't been
        exhausted), the injector's health tracker holds no suspects
        (flapping protection), and the root cube contains a healthy
        subcube strictly larger than the current machine.  Cheap no-op
        for sessions that never degraded.
        """
        led = self._expansion
        if led is None or not led.enabled:
            return False
        machine = self.machine
        injector = machine.faults
        led.sync_kills(machine)
        applied = led.apply_due_heals(machine.counters.time)
        if applied:
            if injector is not None:
                for kind, _dim, _pid in applied:
                    if kind == "node":
                        injector.stats.node_heals += 1
                    else:
                        injector.stats.link_heals += 1
            tracer = machine.tracer
            if tracer is not None:
                for kind, dim, pid in applied:
                    name = (
                        f"heal_node:{pid}" if kind == "node"
                        else f"heal_link:{dim}@{pid}"
                    )
                    tracer.instant(name, "fault", pid=pid)
        if injector is not None and injector.health.tracked:
            return False  # still-suspect components: don't thrash
        if not led.heal_applied:
            # Promotion is heal-driven: greedy degrades can leave a
            # larger root subcube healthy, but re-expanding without a
            # repair would change long-standing degrade-only behavior.
            return False
        return led.promotion_target(machine.p) is not None

    def promote(self) -> Hypercube:
        """Re-expand onto the largest healthy cube — the mirror of
        :meth:`degrade`.

        Requires a prior degrade (the expansion ledger) and a strictly
        larger healthy target; raises :class:`~repro.errors.FaultError`
        otherwise.  The caller (normally :func:`repro.faults.
        run_resilient`, on :class:`~repro.faults.strategies.
        PromotionPending`) must re-scatter state from the latest
        checkpoint afterwards — arrays built on the smaller machine are
        as dead after a promote as after a degrade.
        """
        from ..errors import FaultError

        led = self._expansion
        if led is None:
            raise FaultError("promote() requires a degraded session")
        target = led.promotion_target(self.machine.p)
        if target is None:
            raise FaultError(
                "no healthy cube larger than the current machine is "
                "available for promotion"
            )
        free_dims, base = target
        old = self.machine
        new = Hypercube(
            len(free_dims),
            old.cost_model,
            plan_cache=old.plans.enabled,
            counters=old.counters,
        )
        tracer = old.tracer
        if tracer is not None:
            tracer.instant(
                "promote",
                "fault",
                old_p=old.p,
                new_p=new.p,
                base=base,
                free_dims=list(free_dims),
            )
            tracer.rebind(new)
            new.tracer = tracer
        injector = old.faults
        if injector is not None:
            # Lift pending events from subcube coordinates to root
            # coordinates, then compress into the promoted cube.  The pid
            # modulo inside translate() must see the root's extent.
            injector.untranslate(led.embed_dims, led.embed_base)
            injector.machine = led.root
            injector.translate(free_dims, base)
            new.attach_faults(injector)
            injector.stats.expansions += 1
        self._rebind_attachments(old, new)
        led.record_promote(free_dims, base)
        # Each promotion consumes the heals that justified it; growing
        # further requires further repairs to land.
        led.heal_applied = False
        self.machine = new
        return new

    # -- array factories ----------------------------------------------------

    def _matrix_cls(self) -> type:
        """Matrix class for new arrays: checksummed when ABFT is attached."""
        if self.machine.abft is not None:
            from ..abft.arrays import ABFTMatrix

            return ABFTMatrix
        return DistributedMatrix

    def _vector_cls(self) -> type:
        """Vector class for new arrays: checksummed when ABFT is attached."""
        if self.machine.abft is not None:
            from ..abft.arrays import ABFTVector

            return ABFTVector
        return DistributedVector

    def matrix(
        self,
        data: np.ndarray,
        layout: str = "block",
        embedding: Optional[MatrixEmbedding] = None,
    ) -> DistributedMatrix:
        """Embed a host matrix (aspect-matched grid, balanced layout)."""
        return self._matrix_cls().from_numpy(
            self.machine, data, embedding=embedding, layout=layout
        )

    def vector(self, data: np.ndarray, layout: str = "block") -> DistributedVector:
        """Embed a host vector in vector order (spread over all processors)."""
        return self._vector_cls().from_numpy(self.machine, data, layout=layout)

    def row_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed a host vector row-aligned (replicated) with ``like``."""
        emb = RowAlignedEmbedding(like.embedding, None)
        return self._vector_cls()(emb.scatter(np.asarray(data)), emb)

    def col_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed a host vector column-aligned (replicated) with ``like``."""
        emb = ColAlignedEmbedding(like.embedding, None)
        return self._vector_cls()(emb.scatter(np.asarray(data)), emb)

    def sparse_matrix(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape,
        layout: str = "nnz",
    ):
        """Embed COO triplets as a row-partitioned sparse matrix.

        ``layout="nnz"`` (default) balances nonzeros per rank; ``"block"``
        balances row counts.  Imported lazily: a session that never builds
        sparse arrays never loads :mod:`repro.sparse`.
        """
        from ..sparse import SparseMatrix

        return SparseMatrix.from_coo(
            self.machine, rows, cols, data, shape, layout=layout
        )

    def sparse_vector(self, data: np.ndarray, fill=0, like=None):
        """Embed a host vector with an explicit absent-value ``fill``.

        Pass ``like`` (a sparse matrix or vector) to align partitions so
        elementwise combines need no data motion.
        """
        from ..sparse import SparseVector

        embedding = like.embedding if like is not None else None
        return SparseVector.from_numpy(
            self.machine, data, fill=fill, embedding=embedding
        )

    # -- embedding helpers -----------------------------------------------------

    def vector_order(self, length: int, layout: str = "block") -> VectorOrderEmbedding:
        return VectorOrderEmbedding(self.machine, length, layout)

    def row_aligned(
        self, like: DistributedMatrix, resident: Optional[int] = None
    ) -> RowAlignedEmbedding:
        return RowAlignedEmbedding(like.embedding, resident)

    def col_aligned(
        self, like: DistributedMatrix, resident: Optional[int] = None
    ) -> ColAlignedEmbedding:
        return ColAlignedEmbedding(like.embedding, resident)

    # -- accounting --------------------------------------------------------------

    @property
    def time(self) -> float:
        """Total simulated time so far (ticks)."""
        return self.machine.counters.time

    def snapshot(self) -> CostSnapshot:
        return self.machine.snapshot()

    def reset_counters(self) -> None:
        self.machine.counters.reset()
        if self.machine.sanitizer is not None:
            self.machine.sanitizer.resync()

    def report(self) -> str:
        """Human-readable accounting summary."""
        c = self.machine.counters
        lines = [
            f"simulated machine : p={self.machine.p} (n={self.machine.n}), "
            f"cost model {self.machine.cost_model}",
            f"simulated time    : {c.time:.1f} ticks",
            f"flops             : {c.flops:.0f}",
            f"elements moved    : {c.elements_transferred:.0f}",
            f"comm rounds       : {c.comm_rounds}",
            f"local moves       : {c.local_moves:.0f}",
        ]
        plans = self.machine.plans
        if plans.enabled:
            lines.append(
                f"plan cache        : {len(plans)} plans, "
                f"{plans.hits} hits / {plans.misses} misses / "
                f"{plans.evictions} evictions"
            )
        else:
            lines.append("plan cache        : disabled")
        injector = self.machine.faults
        if injector is not None:
            st = injector.stats
            lines.append(
                f"faults            : {st.node_kills} node kills, "
                f"{st.link_kills} link kills, {st.drops} drops / "
                f"{st.retries} retries, {st.detour_rounds} detour rounds, "
                f"{st.recoveries} recoveries"
            )
            if (
                st.link_slows
                or st.node_slows
                or st.flaky_links
                or st.straggler_detours
            ):
                lines.append(
                    f"gray faults       : {st.link_slows} slow links, "
                    f"{st.node_slows} slow nodes, {st.flaky_links} flaky "
                    f"links / {st.flaky_drops} drops, "
                    f"{st.hedged_retransmits} hedged, "
                    f"{st.slow_rounds} stretched rounds "
                    f"(+{st.slow_time:.1f} ticks), "
                    f"{st.straggler_detours} straggler detours, "
                    f"{st.gray_recoveries} recoveries"
                )
            if st.node_heals or st.link_heals or st.expansions:
                lines.append(
                    f"re-expansion      : {st.node_heals} node heals, "
                    f"{st.link_heals} link heals, "
                    f"{st.expansions} promotions"
                )
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            lines.append(
                f"sanitizer         : {sanitizer.stats.total} checks passed"
            )
        abft = self.machine.abft
        if abft is not None:
            st = abft.stats
            lines.append(
                f"abft              : {st.protected} protected / "
                f"{st.verifies} verified, {c.abft_detected} detected, "
                f"{c.abft_corrected} corrected, {c.abft_recomputed} replays, "
                f"{st.scrubs} scrubs, {st.wire_retransmits} wire retransmits"
            )
        breakdown = c.phase_breakdown()
        if breakdown:
            lines.append("phase breakdown:")
            for name, t in breakdown:
                share = 100.0 * t / c.time if c.time else 0.0
                lines.append(f"  {name:<24s} {t:>14.1f}  ({share:5.1f}%)")
        tracer = self.machine.tracer
        if tracer is not None:
            summary = tracer.primitive_summary()
            if summary:
                lines.append("primitive breakdown:")
                lines.append(
                    f"  {'name':<16s} {'count':>5s} {'time':>12s} "
                    f"{'flops':>10s} {'elems':>10s} {'rounds':>6s} "
                    f"{'cong p50':>9s} {'cong max':>9s}"
                )
                for name, row in summary.items():
                    lines.append(
                        f"  {name:<16s} {row['count']:>5d} "
                        f"{row['time']:>12.1f} {row['flops']:>10.0f} "
                        f"{row['elements']:>10.0f} {row['rounds']:>6d} "
                        f"{row['congestion_p50']:>9.1f} "
                        f"{row['congestion_max']:>9.1f}"
                    )
        return "\n".join(lines)

    def report_data(self) -> dict:
        """The :meth:`report` content as a JSON-serialisable dict."""
        c = self.machine.counters
        plans = self.machine.plans
        data = {
            "p": self.machine.p,
            "n": self.machine.n,
            "cost_model": str(self.machine.cost_model),
            "time": c.time,
            "flops": c.flops,
            "elements_transferred": c.elements_transferred,
            "comm_rounds": c.comm_rounds,
            "local_moves": c.local_moves,
            "plan_cache": (
                {
                    "enabled": True,
                    "entries": len(plans),
                    "hits": plans.hits,
                    "misses": plans.misses,
                    "evictions": plans.evictions,
                }
                if plans.enabled
                else {"enabled": False}
            ),
            "phase_breakdown": [
                {"phase": name, "time": t} for name, t in c.phase_breakdown()
            ],
        }
        injector = self.machine.faults
        if injector is not None:
            data["faults"] = injector.stats.as_dict()
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            data["sanitizer"] = sanitizer.stats.as_dict()
        abft = self.machine.abft
        if abft is not None:
            data["abft"] = dict(
                abft.stats.as_dict(),
                detected=c.abft_detected,
                corrected=c.abft_corrected,
                recomputed=c.abft_recomputed,
            )
        tracer = self.machine.tracer
        if tracer is not None:
            data["primitive_breakdown"] = tracer.primitive_summary()
            data["congestion"] = tracer.congestion.summary()
        registry = self.machine.metrics
        if registry is not None:
            data["metrics"] = registry.collect()
        profiler = self.machine.profiler
        if profiler is not None:
            data["profile"] = profiler.as_dict()
        return data

    def __repr__(self) -> str:
        return f"Session(p={self.machine.p}, time={self.time:.1f})"
