"""Session facade: one object that owns the machine and builds arrays.

A :class:`Session` is the quickstart entry point::

    from repro import Session

    s = Session(n_dims=10)                 # 1024 simulated processors
    A = s.matrix(np.random.rand(256, 256))
    x = s.vector(np.random.rand(256))
    y = A.matvec(x.as_embedding(s.row_aligned(A)))
    print(s.report())
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..machine.cost_model import CostModel
from ..machine.counters import CostSnapshot
from ..machine.hypercube import Hypercube
from ..embeddings.matrix import MatrixEmbedding
from ..embeddings.vector import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorOrderEmbedding,
)
from .arrays import DistributedMatrix, DistributedVector


class Session:
    """A simulated machine plus convenience factories."""

    def __init__(
        self,
        n_dims: int,
        cost_model: Optional[Union[CostModel, str]] = None,
        plan_cache: Optional[bool] = None,
    ) -> None:
        if isinstance(cost_model, str):
            try:
                cost_model = getattr(CostModel, cost_model)()
            except AttributeError:
                raise ValueError(
                    f"unknown cost model preset {cost_model!r}; "
                    "try 'cm2', 'unit', 'latency_bound' or 'bandwidth_bound'"
                ) from None
        self.machine = Hypercube(n_dims, cost_model, plan_cache=plan_cache)

    # -- array factories ----------------------------------------------------

    def matrix(
        self,
        data: np.ndarray,
        layout: str = "block",
        embedding: Optional[MatrixEmbedding] = None,
    ) -> DistributedMatrix:
        """Embed a host matrix (aspect-matched grid, balanced layout)."""
        return DistributedMatrix.from_numpy(
            self.machine, data, embedding=embedding, layout=layout
        )

    def vector(self, data: np.ndarray, layout: str = "block") -> DistributedVector:
        """Embed a host vector in vector order (spread over all processors)."""
        return DistributedVector.from_numpy(self.machine, data, layout=layout)

    def row_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed a host vector row-aligned (replicated) with ``like``."""
        emb = RowAlignedEmbedding(like.embedding, None)
        return DistributedVector(emb.scatter(np.asarray(data)), emb)

    def col_vector(
        self, data: np.ndarray, like: DistributedMatrix
    ) -> DistributedVector:
        """Embed a host vector column-aligned (replicated) with ``like``."""
        emb = ColAlignedEmbedding(like.embedding, None)
        return DistributedVector(emb.scatter(np.asarray(data)), emb)

    # -- embedding helpers -----------------------------------------------------

    def vector_order(self, length: int, layout: str = "block") -> VectorOrderEmbedding:
        return VectorOrderEmbedding(self.machine, length, layout)

    def row_aligned(
        self, like: DistributedMatrix, resident: Optional[int] = None
    ) -> RowAlignedEmbedding:
        return RowAlignedEmbedding(like.embedding, resident)

    def col_aligned(
        self, like: DistributedMatrix, resident: Optional[int] = None
    ) -> ColAlignedEmbedding:
        return ColAlignedEmbedding(like.embedding, resident)

    # -- accounting --------------------------------------------------------------

    @property
    def time(self) -> float:
        """Total simulated time so far (ticks)."""
        return self.machine.counters.time

    def snapshot(self) -> CostSnapshot:
        return self.machine.snapshot()

    def reset_counters(self) -> None:
        self.machine.counters.reset()

    def report(self) -> str:
        """Human-readable accounting summary."""
        c = self.machine.counters
        lines = [
            f"simulated machine : p={self.machine.p} (n={self.machine.n}), "
            f"cost model {self.machine.cost_model}",
            f"simulated time    : {c.time:.1f} ticks",
            f"flops             : {c.flops:.0f}",
            f"elements moved    : {c.elements_transferred:.0f}",
            f"comm rounds       : {c.comm_rounds}",
            f"local moves       : {c.local_moves:.0f}",
        ]
        plans = self.machine.plans
        if plans.enabled:
            lines.append(
                f"plan cache        : {len(plans)} plans, "
                f"{plans.hits} hits / {plans.misses} misses / "
                f"{plans.evictions} evictions"
            )
        else:
            lines.append("plan cache        : disabled")
        breakdown = c.phase_breakdown()
        if breakdown:
            lines.append("phase breakdown:")
            for name, t in breakdown:
                share = 100.0 * t / c.time if c.time else 0.0
                lines.append(f"  {name:<24s} {t:>14.1f}  ({share:5.1f}%)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Session(p={self.machine.p}, time={self.time:.1f})"
