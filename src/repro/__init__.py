"""repro — a reproduction of "Four Vector-Matrix Primitives" (SPAA 1989).

Four APL-like primitives (extract, insert, distribute, reduce) for dense
matrices and vectors on a simulated Connection-Machine-style hypercube
multiprocessor, with load-balanced Gray-code embeddings, the three
applications from the paper (vector-matrix multiply, Gaussian elimination,
simplex), naive baselines, and analytic cost models.

Quickstart::

    import numpy as np
    from repro import Session

    s = Session(n_dims=8)                    # 256 simulated processors
    A = s.matrix(np.random.rand(64, 48))
    v = s.col_vector(np.random.rand(64), like=A)
    row_sums = A.reduce(axis=1, op="sum")    # the reduce primitive
    y = A.vecmat(v)                          # the paper's vector-matrix multiply
    print(s.report())
"""

from .core import DistributedMatrix, DistributedVector, Session
from .errors import (
    CheckpointError,
    CorruptionError,
    EmbeddingError,
    FaultError,
    NodeKilledError,
    ReproError,
    ShapeError,
    UnroutableError,
)
from .machine import CostModel, Hypercube, PVar, Router

__version__ = "1.0.0"

__all__ = [
    "Session",
    "DistributedMatrix",
    "DistributedVector",
    "Hypercube",
    "CostModel",
    "PVar",
    "Router",
    "ReproError",
    "ShapeError",
    "EmbeddingError",
    "FaultError",
    "NodeKilledError",
    "UnroutableError",
    "CheckpointError",
    "CorruptionError",
    "__version__",
]
