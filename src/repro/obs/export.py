"""Trace sinks: structured JSONL log and Chrome trace-event JSON.

Three ways to look at one traced run:

* the in-memory span tree (``tracer.roots`` — see :mod:`.tracer`), for
  tests and interactive queries;
* :func:`to_jsonl` — one JSON object per line (spans in close order plus
  instant events), for scripts and log pipelines;
* :func:`to_chrome_trace` — the Chrome trace-event format, loadable in
  ``chrome://tracing`` or Perfetto (https://ui.perfetto.dev): spans become
  matched ``B``/``E`` duration events whose clock is *simulated ticks*
  (rendered as microseconds by the viewers).

:func:`validate_chrome_trace` checks the format invariants the CI smoke
job relies on: every event well-formed, timestamps monotonically
non-decreasing per thread, and every ``B`` matched by an ``E`` of the same
name at the same nesting depth.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from .tracer import Span, Tracer
from ..errors import ConfigError

PathOrFile = Union[str, "IO[str]"]


def _open_for_write(dest: PathOrFile):
    if hasattr(dest, "write"):
        return dest, False
    return open(dest, "w"), True


# ---------------------------------------------------------------------------
# JSONL structured event log
# ---------------------------------------------------------------------------

def to_jsonl(tracer: Tracer, dest: PathOrFile) -> int:
    """Write the tracer's event log as JSON Lines; returns the line count.

    The first line is a ``meta`` record describing the machine; every
    following line is a span (in close order) or an instant event.  Span
    records carry the full cost delta, plan-cache hits/misses and the
    ``(dim, congestion)`` of every direct communication round.
    """
    fh, owned = _open_for_write(dest)
    try:
        lines = 0
        machine = tracer.machine
        meta: Dict[str, Any] = {"type": "meta", "schema": "repro-trace-v1"}
        if machine is not None:
            meta.update(
                p=machine.p, n=machine.n, cost_model=repr(machine.cost_model)
            )
        fh.write(json.dumps(meta) + "\n")
        lines += 1
        for event in tracer.events:
            fh.write(json.dumps(event) + "\n")
            lines += 1
        return lines
    finally:
        if owned:
            fh.close()


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's span tree as a Chrome trace-event list.

    Every span becomes a ``B``/``E`` pair on one thread of one process;
    ``ts`` is the simulated tick count at open/close.  A depth-first walk
    of the tree emits properly nested, monotonically non-decreasing
    timestamps because simulated time never runs backwards.
    """
    machine = tracer.machine
    label = (
        f"repro simulated hypercube (p={machine.p}, n={machine.n})"
        if machine is not None
        else "repro simulated hypercube"
    )
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        },
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "simulated ticks"},
        },
    ]

    def emit(span: Span) -> None:
        if not span.closed:
            return
        args: Dict[str, Any] = dict(span.attrs)
        args.update(span.cost.as_dict())
        if span.plan_hits or span.plan_misses:
            args["plan_hits"] = span.plan_hits
            args["plan_misses"] = span.plan_misses
        if span.rounds:
            args["max_congestion"] = max(c for _, c in span.rounds)
        events.append(
            {
                "ph": "B",
                "pid": 0,
                "tid": 0,
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ts,
                "args": args,
            }
        )
        for child in span.children:
            emit(child)
        events.append(
            {
                "ph": "E",
                "pid": 0,
                "tid": 0,
                "name": span.name,
                "cat": span.category,
                "ts": span.end_ts,
            }
        )

    for root in tracer.roots:
        emit(root)
    # Instant events (fault kills, drops, degrade/restore markers) go on
    # their own thread: the event log is time-ordered on its own, but its
    # timestamps interleave with the span tree's depth-first order.
    instants = [e for e in tracer.events if e.get("type") == "instant"]
    if instants:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": 1,
                "name": "thread_name",
                "args": {"name": "instant events"},
            }
        )
        for e in instants:
            events.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": 1,
                    "name": e["name"],
                    "cat": e["category"],
                    "ts": e["ts"],
                    "s": "t",
                    "args": dict(e.get("attrs", {})),
                }
            )
    return events


def to_chrome_trace(
    tracer: Tracer,
    dest: PathOrFile,
    extra_events: Any = None,
) -> Dict[str, Any]:
    """Write (and return) the Chrome trace-event JSON document.

    ``extra_events`` appends additional trace events — e.g. the counter
    (``"C"``) tracks from :meth:`repro.metrics.MetricsRegistry.
    counter_track_events` or :meth:`repro.metrics.PhaseProfiler.
    counter_track_events` — after the span tree.
    """
    events = chrome_trace_events(tracer)
    if extra_events:
        events = events + list(extra_events)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated ticks", "schema": "repro-trace-v1"},
    }
    fh, owned = _open_for_write(dest)
    try:
        json.dump(document, fh, indent=1)
    finally:
        if owned:
            fh.close()
    return document


# ---------------------------------------------------------------------------
# validation (used by tests and the CI smoke-trace job)
# ---------------------------------------------------------------------------

def validate_chrome_trace(document: Any) -> Dict[str, int]:
    """Check trace-event invariants; raises ``ValueError`` on violation.

    Validated per ``(pid, tid)`` thread: timestamps monotonically
    non-decreasing, every ``B`` closed by an ``E`` with the same name (LIFO
    nesting), no stray ``E``.  Instant (``i``) and counter (``C``) events
    only need a name and a monotonic timestamp.  Returns ``{"events": ...,
    "spans": ..., "instants": ..., "counters": ...}``.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise ConfigError("trace document has no 'traceEvents' list")
    elif isinstance(document, list):
        events = document
    else:
        raise ConfigError(f"not a trace document: {type(document).__name__}")

    last_ts: Dict[Any, float] = {}
    stacks: Dict[Any, List[str]] = {}
    spans = 0
    instants = 0
    counters = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ConfigError(f"event {i} is not a trace event: {event!r}")
        ph = event["ph"]
        if ph == "M":
            continue
        if ph not in ("B", "E", "i", "C"):
            raise ConfigError(f"event {i}: unexpected phase {ph!r}")
        if "name" not in event or "ts" not in event:
            raise ConfigError(f"event {i}: missing 'name' or 'ts'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            raise ConfigError(f"event {i}: non-numeric ts {ts!r}")
        thread = (event.get("pid", 0), event.get("tid", 0))
        if ts < last_ts.get(thread, float("-inf")):
            raise ConfigError(
                f"event {i}: ts {ts} goes backwards on thread {thread}"
            )
        last_ts[thread] = ts
        if ph == "i":
            instants += 1
            continue
        if ph == "C":
            counters += 1
            continue
        stack = stacks.setdefault(thread, [])
        if ph == "B":
            stack.append(event["name"])
        else:
            if not stack:
                raise ConfigError(f"event {i}: 'E' with no open 'B'")
            opened = stack.pop()
            if opened != event["name"]:
                raise ConfigError(
                    f"event {i}: 'E' for {event['name']!r} closes "
                    f"open span {opened!r}"
                )
            spans += 1
    for thread, stack in stacks.items():
        if stack:
            raise ConfigError(
                f"thread {thread}: unclosed spans at end of trace: {stack}"
            )
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "counters": counters,
    }


def validate_chrome_trace_file(path: str) -> Dict[str, int]:
    """Load ``path`` and :func:`validate_chrome_trace` it."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))
