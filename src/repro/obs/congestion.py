"""Per-link congestion accounting for the traced machine.

The paper's headline contrast is *congestion*: the four primitives move
data in uniform dimension-exchange rounds (every link of a cube dimension
carries the same volume), while the naive baselines funnel many-to-one
traffic that serialises on the links near the destination.  This module
turns the tracer's round-level observations into queryable aggregates:

* a per-link **heatmap** — an ``(n, p)`` array of total elements carried by
  the link of dimension ``d`` at processor ``q`` (a routing round's load on
  link ``(d, q)`` is the volume the processor at ``q`` injects across
  ``d``);
* a **histogram** of per-round maximum link congestion;
* per-dimension totals and maxima, which stay exact even when a cached
  route plan replays only its per-dimension congestion summary.

Rounds with no attributable dimension (e.g. pipelined multi-tree
schedules) are filed under dimension ``-1`` and excluded from the heatmap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: Above this processor count the (n, p) heatmap array is not allocated;
#: per-dimension totals/maxima and the round histogram remain available.
MAX_HEATMAP_P = 1 << 16


class CongestionAggregator:
    """Accumulates link loads and round congestion across a traced run."""

    def __init__(self) -> None:
        self.n = 0
        self.p = 0
        self._link_load: Optional[np.ndarray] = None  # (n, p) element totals
        self.dim_volume: Dict[int, float] = {}
        self.dim_max: Dict[int, float] = {}
        #: per-round records ``(dim, max link congestion, kind)`` where kind
        #: is ``"exchange"`` (uniform) or ``"route"`` (e-cube routed).
        self.round_log: List[Tuple[int, float, str]] = []

    def bind(self, n: int, p: int) -> None:
        self.n = n
        self.p = p
        if self._link_load is None and n > 0 and p <= MAX_HEATMAP_P:
            self._link_load = np.zeros((n, p))

    # -- recording ------------------------------------------------------------

    def _tally(self, dim: int, volume: float, congestion: float, kind: str) -> None:
        self.dim_volume[dim] = self.dim_volume.get(dim, 0.0) + volume
        self.dim_max[dim] = max(self.dim_max.get(dim, 0.0), congestion)
        self.round_log.append((dim, congestion, kind))

    def record_uniform(self, dim: int, volume: float) -> None:
        """A dimension-exchange round: every link carries ``volume``."""
        if self._link_load is not None and 0 <= dim < self.n:
            self._link_load[dim, : self.p] += volume
        self._tally(dim, volume * max(self.p, 1), float(volume), "exchange")

    def record_route(
        self, dim: int, loads: Optional[np.ndarray], congestion: float
    ) -> None:
        """An e-cube routing round with per-processor link ``loads``.

        ``loads`` is ``None`` when a cached plan replays only its summary;
        the heatmap then misses the round, but the per-dimension maxima and
        the round histogram stay exact.
        """
        volume = float(loads.sum()) if loads is not None else 0.0
        if loads is not None and self._link_load is not None and 0 <= dim < self.n:
            # A degraded (smaller) machine reports fewer links than the
            # heatmap was allocated for; its pids occupy the low indices.
            self._link_load[dim, : len(loads)] += loads
        self._tally(dim, volume, float(congestion), "route")

    # -- queries ---------------------------------------------------------------

    @property
    def rounds(self) -> int:
        return len(self.round_log)

    def heatmap(self) -> np.ndarray:
        """Total elements per link: shape ``(n, p)``, row = cube dimension."""
        if self._link_load is None:
            return np.zeros((self.n, 0))
        return self._link_load.copy()

    def per_dim_max(self) -> Dict[int, float]:
        """Worst single-round link congestion seen per dimension."""
        return dict(self.dim_max)

    def max_congestion(self) -> float:
        """Worst single-round link congestion across the whole run."""
        return max(self.dim_max.values(), default=0.0)

    def round_congestions(self, kind: Optional[str] = None) -> np.ndarray:
        """Per-round max link congestion, optionally filtered by kind."""
        vals = [c for _, c, k in self.round_log if kind is None or k == kind]
        return np.asarray(vals, dtype=np.float64)

    def histogram(
        self, bins: int = 16, kind: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``np.histogram`` of per-round max congestion."""
        vals = self.round_congestions(kind)
        if vals.size == 0:
            return np.zeros(bins, dtype=np.int64), np.linspace(0.0, 1.0, bins + 1)
        return np.histogram(vals, bins=bins)

    def percentile(self, q: float, kind: Optional[str] = None) -> float:
        vals = self.round_congestions(kind)
        if vals.size == 0:
            return 0.0
        return float(np.percentile(vals, q))

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": float(self.rounds),
            "max_congestion": self.max_congestion(),
            "congestion_p50": self.percentile(50.0),
            "congestion_p99": self.percentile(99.0),
        }
