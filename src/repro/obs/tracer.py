"""Structured tracing: primitive-level spans over the simulated machine.

The simulator's :class:`~repro.machine.counters.Counters` answer "what did
the whole run cost"; the tracer answers "which *call* cost it".  Every
primitive application, collective, embedding change and router simulation
opens a :class:`Span` that records the :class:`~repro.machine.counters.
CostSnapshot` delta across its body, the plan-cache hits/misses it
incurred, and the per-dimension link congestion of every communication
round executed inside it.  Spans nest under the existing ``phase()`` stack,
so the span tree *is* the call tree of the simulation.

Design constraints (pinned by ``tests/test_obs.py``):

* **Null by default.**  ``machine.tracer`` is ``None`` unless a tracer is
  attached; every instrumentation site guards with a single ``is None``
  branch and charges nothing, so cost totals are bit-identical with
  tracing on, off, or absent.
* **Simulated ticks are the clock.**  Span timestamps are
  ``counters.time`` values, so per-phase span durations sum exactly to the
  ``phase_times`` the counters already report.
* **Read-only.**  The tracer never charges the machine and never touches
  the plan cache; it observes snapshots and round details only.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from ..machine.counters import CostSnapshot
from .congestion import CongestionAggregator
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..machine.hypercube import Hypercube

#: Environment variable that turns tracing on for new ``Session``s.
ENV_FLAG = "REPRO_TRACE"

#: Shared re-entrant no-op context used when no tracer is attached.
NULL_CONTEXT = contextlib.nullcontext()


def env_enabled() -> bool:
    """The process-wide default from ``REPRO_TRACE`` (default: off)."""
    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


def maybe_span(machine: "Hypercube", name: str, category: str, **attrs: Any):
    """A span on ``machine``'s tracer, or a shared no-op context.

    This is the single branch every instrumented call site pays when
    tracing is off.
    """
    tracer = machine.tracer
    if tracer is None:
        return NULL_CONTEXT
    return tracer.span(name, category, **attrs)


@dataclass
class Span:
    """One traced call: a named interval on the simulated clock.

    ``start``/``end`` are counter snapshots taken at open/close, so
    ``span.cost`` is exactly what the call charged (children included).
    ``rounds`` lists the ``(dim, congestion)`` of every communication round
    executed *directly* inside this span (children keep their own); use
    :meth:`iter` / :meth:`subtree_rounds` for inclusive views.
    """

    name: str
    category: str
    start_ts: float
    start: CostSnapshot
    attrs: Dict[str, Any] = field(default_factory=dict)
    end_ts: float = 0.0
    end: Optional[CostSnapshot] = None
    plan_hits: int = 0
    plan_misses: int = 0
    rounds: List[Tuple[int, float]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated ticks elapsed inside the span."""
        return (self.end_ts if self.closed else self.start_ts) - self.start_ts

    @property
    def cost(self) -> CostSnapshot:
        """The counter delta across the span (zero while still open)."""
        if self.end is None:
            return CostSnapshot()
        return self.end - self.start

    def iter(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def subtree_rounds(self) -> List[Tuple[int, float]]:
        """All ``(dim, congestion)`` rounds in the span and its descendants."""
        out: List[Tuple[int, float]] = []
        for span in self.iter():
            out.extend(span.rounds)
        return out

    def max_congestion(self) -> float:
        """Largest per-round link congestion observed in the subtree."""
        rounds = self.subtree_rounds()
        return max((c for _, c in rounds), default=0.0)

    def to_event(self) -> Dict[str, Any]:
        """The span as one structured-log record (JSONL line payload)."""
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "category": self.category,
            "ts": self.start_ts,
            "dur": self.duration,
            "cost": self.cost.as_dict(),
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "rounds": [[int(d), float(c)] for d, c in self.rounds],
        }
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event


class Tracer:
    """Collects a span tree plus congestion statistics from one machine.

    Attach with :meth:`Hypercube.attach_tracer` (or ``Session(trace=True)``)
    *before* running the workload.  Query ``roots``, :meth:`iter_spans`,
    :meth:`find`, :meth:`primitive_summary` afterwards, or export with
    :func:`repro.obs.export.to_chrome_trace` / :func:`~repro.obs.export.
    to_jsonl`.
    """

    def __init__(self) -> None:
        self.machine: Optional["Hypercube"] = None
        self.roots: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self.congestion = CongestionAggregator()
        self._stack: List[Span] = []

    # -- binding --------------------------------------------------------------

    def bind(self, machine: "Hypercube") -> None:
        """Bind to a machine (called by ``Hypercube.attach_tracer``)."""
        if self.machine is not None and self.machine is not machine:
            raise ConfigError("tracer is already bound to a different machine")
        self.machine = machine
        self.congestion.bind(machine.n, machine.p)

    def rebind(self, machine: "Hypercube") -> None:
        """Re-bind to a replacement machine, keeping all recorded history.

        Used by degraded-mode recovery (:meth:`repro.core.session.Session.
        degrade`): the session swaps in a smaller healthy subcube charging
        into the *same* counters, so the span clock keeps advancing
        monotonically across the swap.  The congestion heatmap keeps its
        original geometry; the surviving subcube's links land in the
        low-index rows/columns.
        """
        self.machine = machine
        self.congestion.bind(machine.n, machine.p)

    def _counters(self):
        if self.machine is None:
            raise RuntimeError("tracer is not attached to a machine")
        return self.machine.counters

    # -- span lifecycle -------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, category: str = "span", **attrs: Any):
        """Open a span around the block; closes on exit, exceptions included."""
        c = self._counters()
        span = Span(
            name=name,
            category=category,
            start_ts=c.time,
            start=c.snapshot(),
            attrs=attrs,
        )
        span.plan_hits = c.plan_hits
        span.plan_misses = c.plan_misses
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            assert popped is span
            span.end_ts = c.time
            span.end = c.snapshot()
            span.plan_hits = c.plan_hits - span.plan_hits
            span.plan_misses = c.plan_misses - span.plan_misses
            self.events.append(span.to_event())

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def instant(self, name: str, category: str = "event", **attrs: Any) -> None:
        """Record a point event at the current simulated time."""
        c = self._counters()
        event: Dict[str, Any] = {
            "type": "instant",
            "name": name,
            "category": category,
            "ts": c.time,
        }
        if attrs:
            event["attrs"] = dict(attrs)
        self.events.append(event)

    # -- communication-round hooks (called from charge sites) ------------------

    def on_comm_round(
        self, dim: Optional[int], volume: float, rounds: int = 1
    ) -> None:
        """A structured dimension-exchange: every link in ``dim`` carries
        ``volume`` elements (uniform load), ``rounds`` times."""
        d = -1 if dim is None else dim
        for _ in range(rounds):
            self.congestion.record_uniform(d, volume)
            if self._stack:
                self._stack[-1].rounds.append((d, float(volume)))

    def on_route_round(self, dim: int, loads, congestion: float) -> None:
        """One e-cube routing round: ``loads`` is the per-processor link
        load along ``dim`` (``None`` when replaying a cached plan, which
        retains only the round's max congestion)."""
        self.congestion.record_route(dim, loads, congestion)
        if self._stack:
            self._stack[-1].rounds.append((dim, float(congestion)))

    def on_route_replay(self, stats) -> None:
        """Replay the per-dimension congestion of cached route stats."""
        for dim, congestion in stats.dim_congestion:
            self.on_route_round(dim, None, congestion)

    # -- queries ---------------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter()

    def find(
        self, name: Optional[str] = None, category: Optional[str] = None
    ) -> List[Span]:
        """All closed spans matching the given name and/or category."""
        return [
            s
            for s in self.iter_spans()
            if s.closed
            and (name is None or s.name == name)
            and (category is None or s.category == category)
        ]

    def primitive_summary(self) -> "Dict[str, Dict[str, float]]":
        """Aggregate primitive-category spans by name.

        Returns ``{name: {count, time, flops, elements, rounds,
        congestion_p50, congestion_max}}`` — the per-primitive breakdown
        table :meth:`repro.core.session.Session.report` prints.
        """
        import numpy as np

        summary: Dict[str, Dict[str, float]] = {}
        congestions: Dict[str, List[float]] = {}
        for span in self.find(category="primitive"):
            row = summary.setdefault(
                span.name,
                {
                    "count": 0,
                    "time": 0.0,
                    "flops": 0.0,
                    "elements": 0.0,
                    "rounds": 0,
                    "congestion_p50": 0.0,
                    "congestion_max": 0.0,
                },
            )
            cost = span.cost
            row["count"] += 1
            row["time"] += cost.time
            row["flops"] += cost.flops
            row["elements"] += cost.elements_transferred
            row["rounds"] += cost.comm_rounds
            congestions.setdefault(span.name, []).extend(
                c for _, c in span.subtree_rounds()
            )
        for name, cs in congestions.items():
            if cs:
                summary[name]["congestion_p50"] = float(np.percentile(cs, 50))
                summary[name]["congestion_max"] = float(max(cs))
        return summary
