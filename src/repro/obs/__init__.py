"""Observability for the simulated machine: tracing, congestion, exporters.

Turn it on per session (``Session(n, trace=True)``), per machine
(``machine.attach_tracer(Tracer())``) or process-wide (``REPRO_TRACE=1``);
the default is a null tracer whose only cost is one branch per
instrumented call site, with cost totals bit-identical either way.

* :class:`Tracer` / :class:`Span` — the span tree (see :mod:`.tracer`);
* :class:`CongestionAggregator` — per-link heatmaps and round histograms;
* :func:`to_chrome_trace` / :func:`to_jsonl` — file sinks;
* :func:`validate_chrome_trace` — trace-event format invariants.
"""

from .congestion import CongestionAggregator
from .export import (
    chrome_trace_events,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from .tracer import ENV_FLAG, Span, Tracer, env_enabled, maybe_span

__all__ = [
    "CongestionAggregator",
    "ENV_FLAG",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "env_enabled",
    "maybe_span",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
