"""Semiring-parameterized sparse primitives: ``spmv`` and ``spgemm``.

Both primitives follow the 1-D row-partitioned formulation of Buluç &
Gilbert's parallel SpGEMM work: rank ``r`` computes the output rows it owns,
fetching exactly the remote operand fragments its local nonzero *structure*
references.  Communication is the sparse all-to-all of those fragments —
an explicit message multiset charged through
:meth:`Router.simulate <repro.machine.router.Router.simulate>`, so
congestion, e-cube rounds, and plan-cache behaviour all come from the real
irregular traffic rather than a dense-exchange bound.  Message sizes:

* ``spmv`` ships one ``(index, value)`` packet — 2 words — per *present*
  (``!= fill``) vector entry a remote rank needs; entries equal to the
  semiring zero are annihilated (``zero ⊗ x = zero``) and never travel.
* ``spgemm`` ships one packet of ``2 · nnz(row) + 1`` words per remote
  ``B`` row referenced by the local ``A`` structure; empty rows contribute
  nothing and are never requested.

Compute is charged as lockstep SIMD passes at the **maximum** per-rank
operation count — exactly why the nnz-balanced partition matters: a skewed
partition makes every pass wait for the heaviest rank.

The functional result is computed from the same global nonzero sets the
charges describe, with NumPy's unbuffered/segmented reductions
(``ufunc.at`` / ``reduceat``) applying the semiring's ⊕ deterministically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError, ShapeError
from ..machine.router import Router
from .embedding import SparseEmbedding
from .matrix import SparseMatrix, SparseVector
from .semiring import Semiring, get_semiring


def _check_fill_is_zero(x: SparseVector, sr: Semiring) -> None:
    """The annihilator shortcut is sound only when fill == semiring zero."""
    zero = sr.zero(x.dtype)
    if not (x.fill == zero or (x.fill != x.fill and zero != zero)):
        raise ConfigError(
            f"vector fill {x.fill!r} is not the {sr.name} zero "
            f"{zero!r} for dtype {x.dtype}; absent entries would not "
            f"annihilate"
        )


def _global_coo(A: SparseMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    rows, cols, data = A.to_coo()
    return rows, cols, data


def _route_messages(machine, messages: list) -> None:
    """Charge an aggregated sparse all-to-all (``messages`` of (src, dst, words))."""
    if not messages:
        return
    src = np.array([m[0] for m in messages], dtype=np.int64)
    dst = np.array([m[1] for m in messages], dtype=np.int64)
    sizes = np.array([m[2] for m in messages], dtype=np.float64)
    Router(machine).simulate(src, dst, sizes)


def spmv(
    A: SparseMatrix, x: SparseVector, semiring: "Semiring | str" = "plus_times"
) -> SparseVector:
    """``y = A ⊕.⊗ x`` over a semiring; result on ``A``'s row partition.

    The output's fill is the semiring zero: rows with no surviving term
    stay absent, so iterating ``spmv`` keeps frontiers genuinely sparse
    (each iteration routes a *different* message multiset — irregular
    traffic the plan cache only reuses when the frontier repeats exactly).
    """
    machine = A.machine
    if x.machine is not machine:
        raise ConfigError("operands live on different machines")
    sr = get_semiring(semiring)
    N, M = A.shape
    if x.L != M:
        raise ShapeError(
            f"matrix has {M} columns but the vector has {x.L} elements"
        )
    _check_fill_is_zero(x, sr)
    out_dtype = np.result_type(A.dtype, x.dtype)
    zero = sr.zero(out_dtype)
    p = machine.p
    with machine.phase("spmv"):
        xvals = x.to_numpy()
        present = xvals != x.fill
        x_rank = x.embedding.rank_table()
        # Per-rank gather lists: which present x entries each rank needs,
        # grouped by owner.  Message order is (dest, owner) ascending so
        # the multiset (and its route plan key) is deterministic.
        messages = []
        send_words = np.zeros(p, dtype=np.float64)
        recv_words = np.zeros(p, dtype=np.float64)
        ops_per_rank = np.zeros(p, dtype=np.int64)
        for r in range(p):
            idx = A.indices[r]
            if idx.size == 0:
                continue
            ops_per_rank[r] = int(present[idx].sum())
            need = np.unique(idx)
            need = need[present[need]]
            if need.size == 0:
                continue
            counts = np.bincount(x_rank[need], minlength=p)
            for o in range(p):
                if counts[o] == 0 or o == r:
                    continue
                words = 2.0 * counts[o]
                messages.append(
                    (
                        int(x.embedding.pid_of_rank(o)),
                        int(x.embedding.pid_of_rank(r)),
                        words,
                    )
                )
                send_words[o] += words
                recv_words[r] += words
        if messages:
            machine.charge_local(float(send_words.max()))  # pack packets
            _route_messages(machine, messages)
            machine.charge_local(float(recv_words.max()))  # unpack packets
        # Output accumulator init, then mul pass and ⊕-scatter pass.
        machine.charge_local(A.embedding.max_count)
        max_ops = int(ops_per_rank.max()) if p else 0
        if max_ops:
            machine.charge_flops(max_ops)  # ⊗ of every surviving pair
            machine.charge_flops(max_ops)  # ⊕ accumulation into rows
        rows_g, cols_g, data_g = _global_coo(A)
        y = np.full(N, zero, dtype=out_dtype)
        sel = present[cols_g]
        if sel.any():
            terms = sr.mul(
                data_g[sel].astype(out_dtype, copy=False),
                xvals[cols_g[sel]].astype(out_dtype, copy=False),
            )
            sr.accumulate_at(y, rows_g[sel], terms)
        blocks = [blk.copy() for blk in A.embedding.split(y)]
    return SparseVector(machine, A.embedding, blocks, zero)


def spgemm(
    A: SparseMatrix, B: SparseMatrix, semiring: "Semiring | str" = "plus_times"
) -> SparseMatrix:
    """``C = A ⊕.⊗ B`` over a semiring (row-wise Gustavson formulation).

    Rank ``r`` fetches every ``B`` row its local ``A`` structure references
    (remote rows travel as CSR packets), expands all ``A_ik ⊗ B_k*``
    products, and ⊕-combines duplicates.  The result keeps ``A``'s row
    partition; call :meth:`SparseMatrix.rebalance` to re-balance for the
    *output* pattern.  Entries that combine to the semiring zero are
    dropped (the usual "no explicit zeros" convention).
    """
    machine = A.machine
    if B.machine is not machine:
        raise ConfigError("operands live on different machines")
    sr = get_semiring(semiring)
    N, K = A.shape
    K2, M = B.shape
    if K != K2:
        raise ShapeError(
            f"inner dimensions disagree: A is {A.shape}, B is {B.shape}"
        )
    out_dtype = np.result_type(A.dtype, B.dtype)
    zero = sr.zero(out_dtype)
    p = machine.p
    with machine.phase("spgemm"):
        b_row_nnz = B.row_nnz()
        b_rank = B.embedding.rank_table()
        messages = []
        send_words = np.zeros(p, dtype=np.float64)
        recv_words = np.zeros(p, dtype=np.float64)
        ops_per_rank = np.zeros(p, dtype=np.int64)
        for r in range(p):
            idx = A.indices[r]
            if idx.size == 0:
                continue
            ops_per_rank[r] = int(b_row_nnz[idx].sum())
            need = np.unique(idx)
            need = need[b_row_nnz[need] > 0]
            if need.size == 0:
                continue
            words_per_row = 2.0 * b_row_nnz[need] + 1.0
            owners = b_rank[need]
            for o in range(p):
                if o == r:
                    continue
                mask = owners == o
                if not mask.any():
                    continue
                words = float(words_per_row[mask].sum())
                messages.append(
                    (
                        int(B.embedding.pid_of_rank(o)),
                        int(A.embedding.pid_of_rank(r)),
                        words,
                    )
                )
                send_words[o] += words
                recv_words[r] += words
        if messages:
            machine.charge_local(float(send_words.max()))
            _route_messages(machine, messages)
            machine.charge_local(float(recv_words.max()))
        max_ops = int(ops_per_rank.max()) if p else 0
        if max_ops:
            machine.charge_flops(max_ops)  # ⊗ of every expanded product
            machine.charge_local(max_ops)  # sort/stage the expansion
            machine.charge_flops(max_ops)  # ⊕-combine duplicate (i, j)
        # Functional expansion: every (i, k) of A against B's row k.
        a_rows, a_cols, a_data = _global_coo(A)
        b_rows, b_cols, b_data = _global_coo(B)
        b_indptr = np.concatenate([[0], np.cumsum(b_row_nnz)]).astype(np.int64)
        reps = b_row_nnz[a_cols]
        total = int(reps.sum())
        if total == 0:
            return SparseMatrix.from_coo(
                machine,
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=out_dtype),
                (N, M),
                embedding=A.embedding,
            )
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(reps)[:-1]]).astype(np.int64), reps
        )
        pos = np.repeat(b_indptr[a_cols], reps) + offsets
        out_rows = np.repeat(a_rows, reps)
        out_cols = b_cols[pos]
        terms = sr.mul(
            np.repeat(a_data, reps).astype(out_dtype, copy=False),
            b_data[pos].astype(out_dtype, copy=False),
        )
        order = np.lexsort((out_cols, out_rows))
        out_rows, out_cols, terms = (
            out_rows[order], out_cols[order], terms[order],
        )
        fresh = np.concatenate(
            [
                [True],
                (out_rows[1:] != out_rows[:-1])
                | (out_cols[1:] != out_cols[:-1]),
            ]
        )
        starts = np.flatnonzero(fresh)
        combined = sr.reduceat(terms, starts)
        out_rows, out_cols = out_rows[starts], out_cols[starts]
        keep = combined != zero
        result = SparseMatrix.from_coo(
            machine,
            out_rows[keep],
            out_cols[keep],
            combined[keep],
            (N, M),
            embedding=A.embedding,
        )
    return result


__all__ = ["spgemm", "spmv"]
