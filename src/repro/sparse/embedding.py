"""Sparse embeddings: nnz-balanced contiguous row partitions of the cube.

A :class:`SparseEmbedding` assigns each of ``N`` global indices (matrix
rows, or vector elements) to one of the ``p`` cube processors.  Unlike the
dense embeddings — which split a rectangle into equal tiles — a sparse
matrix's work is proportional to its *nonzeros*, so the partition is a
vector of ``p + 1`` explicit row boundaries: rank ``r`` owns the contiguous
range ``starts[r]:starts[r + 1]``.  :meth:`nnz_balanced` chooses the
boundaries so each rank's nonzero count approximates ``nnz / p`` — on a
lockstep SIMD machine every arithmetic pass is charged at the *maximum*
per-processor volume, so nnz balance is directly what bounds simulated time.

Ranks map to processors through the same binary-reflected Gray code as the
dense vector-order embedding (rank ``r`` lives on pid ``gray(r)``), keeping
adjacent row ranges on neighbouring cube nodes.  Owner tables are memoized
on the machine's plan cache under :meth:`signature` — the partition vector
is part of the signature, so two embeddings with the same boundaries share
tables while any rebalance gets fresh ones.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..embeddings.gray import gray, gray_rank
from ..errors import EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.plans import readonly


class SparseEmbedding:
    """A contiguous, explicitly bounded partition of ``N`` indices."""

    def __init__(self, machine: Hypercube, N: int, starts) -> None:
        if N < 1:
            raise ShapeError(f"sparse extent must be >= 1, got {N}")
        starts = np.asarray(starts, dtype=np.int64)
        if starts.shape != (machine.p + 1,):
            raise EmbeddingError(
                f"partition must have p+1 = {machine.p + 1} boundaries, "
                f"got shape {starts.shape}"
            )
        if starts[0] != 0 or starts[-1] != N:
            raise EmbeddingError(
                f"partition must span [0, {N}], got "
                f"[{int(starts[0])}, {int(starts[-1])}]"
            )
        if np.any(np.diff(starts) < 0):
            raise EmbeddingError("partition boundaries must be non-decreasing")
        self.machine = machine
        self.N = N
        self.starts = readonly(starts)
        # rank r lives on pid gray(r); per-pid rank = gray_rank(pid)
        self._rank_of_pid = gray_rank(machine.pids())

    # -- constructors ------------------------------------------------------

    @classmethod
    def balanced(cls, machine: Hypercube, N: int) -> "SparseEmbedding":
        """Equal index counts per rank (the dense-style block split)."""
        if N < 1:
            raise ShapeError(f"sparse extent must be >= 1, got {N}")
        starts = np.minimum(
            (np.arange(machine.p + 1, dtype=np.int64) * N + machine.p - 1)
            // machine.p,
            N,
        )
        starts[0] = 0
        starts[-1] = N
        return cls(machine, N, np.maximum.accumulate(starts))

    @classmethod
    def nnz_balanced(
        cls, machine: Hypercube, row_nnz: np.ndarray
    ) -> "SparseEmbedding":
        """Boundaries chosen so each rank holds ``~nnz / p`` nonzeros.

        The ``k``-th boundary is where the nonzero prefix sum crosses
        ``k * nnz / p``; rows are never split, so the worst rank exceeds
        the ideal share by at most one row's nonzeros.
        """
        row_nnz = np.asarray(row_nnz, dtype=np.int64)
        if row_nnz.ndim != 1 or row_nnz.size < 1:
            raise ShapeError(
                f"row_nnz must be a non-empty 1-D array, got shape "
                f"{row_nnz.shape}"
            )
        N = row_nnz.size
        prefix = np.concatenate([[0], np.cumsum(row_nnz)])
        total = int(prefix[-1])
        targets = np.arange(machine.p + 1, dtype=np.float64) * total / machine.p
        starts = np.searchsorted(prefix, targets, side="left").astype(np.int64)
        starts[0] = 0
        starts[-1] = N
        return cls(machine, N, np.maximum.accumulate(np.minimum(starts, N)))

    # -- identity ----------------------------------------------------------

    def signature(self) -> tuple:
        """Value identity: the extent and the exact partition boundaries."""
        return ("sparse", self.N, tuple(int(s) for s in self.starts))

    def same_partition(self, other: "SparseEmbedding") -> bool:
        return (
            other.machine is self.machine
            and other.N == self.N
            and np.array_equal(other.starts, self.starts)
        )

    # -- shape -------------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """Indices owned per rank (length ``p``)."""
        return np.diff(self.starts)

    @property
    def max_count(self) -> int:
        """The largest per-rank index count (the SIMD pass volume)."""
        return int(self.counts.max())

    def rank_range(self, rank: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` global index range owned by ``rank``."""
        return int(self.starts[rank]), int(self.starts[rank + 1])

    # -- address maps ------------------------------------------------------

    def rank_of(self, g):
        """Owning rank of global index ``g`` (vectorised).

        For boundaries shared by empty ranges the *last* rank whose range
        starts at or before ``g`` wins — consistent with ``rank_range``.
        """
        return np.searchsorted(self.starts, np.asarray(g), side="right") - 1

    def pid_of_rank(self, rank):
        """Cube address of partition rank ``rank`` (Gray-coded)."""
        return gray(rank)

    def rank_of_pid(self, pid):
        """Partition rank living on cube address ``pid``."""
        return gray_rank(pid)

    def owner_table(self) -> np.ndarray:
        """Owning *pid* of every global index, memoized per signature."""

        def build() -> np.ndarray:
            ranks = np.repeat(
                np.arange(self.machine.p, dtype=np.int64), self.counts
            )
            return readonly(np.asarray(gray(ranks), dtype=np.int64))

        return self.machine.plans.memo(
            ("sparse-owner", self.signature()), build
        )

    def rank_table(self) -> np.ndarray:
        """Owning *rank* of every global index, memoized per signature."""

        def build() -> np.ndarray:
            return readonly(
                np.repeat(np.arange(self.machine.p, dtype=np.int64), self.counts)
            )

        return self.machine.plans.memo(
            ("sparse-rank", self.signature()), build
        )

    def split(self, values: np.ndarray) -> list:
        """Split a host array of extent ``N`` into per-rank blocks (views)."""
        values = np.asarray(values)
        if values.shape[0] != self.N:
            raise ShapeError(
                f"expected leading extent {self.N}, got shape {values.shape}"
            )
        return [
            values[self.starts[r]:self.starts[r + 1]]
            for r in range(self.machine.p)
        ]

    def __repr__(self) -> str:
        return (
            f"SparseEmbedding(N={self.N}, p={self.machine.p}, "
            f"max_count={self.max_count})"
        )


__all__ = ["SparseEmbedding"]
