"""Sparse embeddings, semirings, and the SpMV/SpGEMM primitives.

This package extends the paper's four dense primitives with the sparse /
graph workload family (see ``docs/sparse.md``):

* :class:`~repro.sparse.embedding.SparseEmbedding` — explicit nnz-balanced
  contiguous row partitions, Gray-coded onto the cube;
* :class:`~repro.sparse.semiring.Semiring` — (⊕, ⊗) algebras
  (``plus_times``, ``min_plus``, ``or_and``) with identity and annihilator;
* :func:`~repro.sparse.primitives.spmv` /
  :func:`~repro.sparse.primitives.spgemm` — semiring-parameterized
  primitives whose irregular communication is charged through the router.

The package is import-gated: dense runs never load it (pinned by
``tests/test_sparse_isolation.py``), and its compute paths are NumPy-only —
scipy/NetworkX are used exclusively by the differential oracle's reference
cells (the ``repro[sparse]`` extra).
"""

from .embedding import SparseEmbedding
from .matrix import SparseMatrix, SparseVector
from .primitives import spgemm, spmv
from .semiring import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    get_semiring,
    semiring_names,
)

__all__ = [
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "Semiring",
    "SparseEmbedding",
    "SparseMatrix",
    "SparseVector",
    "get_semiring",
    "semiring_names",
    "spgemm",
    "spmv",
]
