"""Distributed sparse arrays: per-rank CSR blocks and aligned vectors.

A :class:`SparseMatrix` holds one CSR block per partition rank — the rows
``starts[r]:starts[r+1]`` of its :class:`~repro.sparse.embedding.
SparseEmbedding`.  The blocks are *ragged* (each rank owns a different
number of rows and nonzeros), so unlike the dense arrays they are not one
rectangular :class:`~repro.machine.pvar.PVar`; instead the functional data
lives in per-rank host arrays and every distributed operation charges the
machine explicitly — compute as lockstep SIMD passes at the **maximum**
per-rank volume, communication as routed message multisets through
:meth:`Router.simulate <repro.machine.router.Router.simulate>`.

Loading host data (``from_coo`` / ``from_dense`` / ``to_dense``) is
front-end I/O and free, matching the dense embedding convention; moving
rows between ranks (:meth:`SparseMatrix.repartition`) is a timed
distributed operation.

A :class:`SparseVector` is the vector partner: per-rank dense segments of a
length-``L`` vector under the same contiguous partition, with an explicit
``fill`` value (the ambient semiring's zero) that the primitives treat as
"absent" — only entries different from ``fill`` are ever shipped.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError, EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.router import Router
from .embedding import SparseEmbedding


def _coo_canonical(
    rows: np.ndarray, cols: np.ndarray, data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort by (row, col) and sum duplicate coordinates (COO convention)."""
    order = np.lexsort((cols, rows))
    rows, cols, data = rows[order], cols[order], data[order]
    if rows.size:
        fresh = np.concatenate(
            [[True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])]
        )
        if not fresh.all():
            starts = np.flatnonzero(fresh)
            data = np.add.reduceat(data, starts)
            rows, cols = rows[starts], cols[starts]
    return rows, cols, data


class SparseMatrix:
    """An ``N × M`` sparse matrix, rows partitioned by a sparse embedding."""

    def __init__(
        self,
        machine: Hypercube,
        embedding: SparseEmbedding,
        shape: Tuple[int, int],
        indptr: List[np.ndarray],
        indices: List[np.ndarray],
        data: List[np.ndarray],
    ) -> None:
        N, M = int(shape[0]), int(shape[1])
        if embedding.N != N:
            raise EmbeddingError(
                f"embedding partitions {embedding.N} rows but the matrix "
                f"has {N}"
            )
        if len(indptr) != machine.p or len(indices) != machine.p or len(
            data
        ) != machine.p:
            raise ShapeError(
                f"expected {machine.p} per-rank blocks, got "
                f"{len(indptr)}/{len(indices)}/{len(data)}"
            )
        self.machine = machine
        self.embedding = embedding
        self.shape = (N, M)
        self.indptr = indptr
        self.indices = indices
        self.data = data

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        machine: Hypercube,
        rows,
        cols,
        data,
        shape: Tuple[int, int],
        layout: str = "nnz",
        embedding: Optional[SparseEmbedding] = None,
    ) -> "SparseMatrix":
        """Build from COO triplets (host-side; duplicates are summed).

        ``layout`` picks the partition when no explicit ``embedding`` is
        given: ``"nnz"`` balances nonzeros per rank, ``"block"`` balances
        row counts (the dense-style split, kept for comparison runs).
        """
        N, M = int(shape[0]), int(shape[1])
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ShapeError(
                f"rows, cols and data must be equal-length 1-D arrays, got "
                f"{rows.shape}, {cols.shape}, {data.shape}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= N):
            raise ShapeError(f"row index out of range for {N} rows")
        if cols.size and (cols.min() < 0 or cols.max() >= M):
            raise ShapeError(f"column index out of range for {M} columns")
        rows, cols, data = _coo_canonical(rows, cols, data)
        if embedding is None:
            if layout == "nnz":
                row_nnz = np.bincount(rows, minlength=N)
                embedding = SparseEmbedding.nnz_balanced(machine, row_nnz)
            elif layout == "block":
                embedding = SparseEmbedding.balanced(machine, N)
            else:
                raise ConfigError(
                    f"unknown sparse layout {layout!r}; try 'nnz' or 'block'"
                )
        elif embedding.machine is not machine:
            raise EmbeddingError("embedding belongs to a different machine")
        indptr, indices, blocks = [], [], []
        for r in range(machine.p):
            lo, hi = embedding.rank_range(r)
            sel = slice(
                np.searchsorted(rows, lo, side="left"),
                np.searchsorted(rows, hi, side="left"),
            )
            local_rows = rows[sel] - lo
            indptr.append(
                np.concatenate(
                    [[0], np.cumsum(np.bincount(local_rows, minlength=hi - lo))]
                ).astype(np.int64)
            )
            indices.append(cols[sel].copy())
            blocks.append(data[sel].copy())
        return cls(machine, embedding, (N, M), indptr, indices, blocks)

    @classmethod
    def from_dense(
        cls,
        machine: Hypercube,
        dense: np.ndarray,
        layout: str = "nnz",
        embedding: Optional[SparseEmbedding] = None,
    ) -> "SparseMatrix":
        """Extract the nonzeros of a host matrix (zero is the background)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(
            machine,
            rows,
            cols,
            dense[rows, cols],
            dense.shape,
            layout=layout,
            embedding=embedding,
        )

    # -- shape / structure -------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.data[0].dtype if self.data else np.dtype(np.float64)

    @property
    def nnz(self) -> int:
        return int(sum(idx.size for idx in self.indices))

    def rank_nnz(self) -> np.ndarray:
        """Per-rank nonzero counts (the SIMD imbalance profile)."""
        return np.array([idx.size for idx in self.indices], dtype=np.int64)

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts as one host array."""
        return np.concatenate([np.diff(ptr) for ptr in self.indptr])

    # -- host transfer (front-end I/O; not timed) --------------------------

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Host COO triplets, sorted by (row, col)."""
        rows = []
        for r in range(self.machine.p):
            lo, hi = self.embedding.rank_range(r)
            local = np.repeat(
                np.arange(hi - lo, dtype=np.int64), np.diff(self.indptr[r])
            )
            rows.append(local + lo)
        return (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64),
            np.concatenate(self.indices),
            np.concatenate(self.data),
        )

    def to_dense(self) -> np.ndarray:
        """Densify on the host (zero background)."""
        out = np.zeros(self.shape, dtype=self.dtype)
        rows, cols, data = self.to_coo()
        out[rows, cols] = data
        return out

    # -- distributed data motion -------------------------------------------

    def repartition(self, embedding: SparseEmbedding) -> "SparseMatrix":
        """Move rows onto a new partition; charged through the router.

        Each moved row travels as one packet of ``2 * nnz(row) + 1`` words
        (column index + value per nonzero, plus the row id); packets
        between the same (source, destination) pair aggregate into one
        message.  Pack and unpack each cost one local pass at the largest
        per-rank moved volume.
        """
        machine = self.machine
        if embedding.machine is not machine:
            raise EmbeddingError("target embedding belongs to another machine")
        if embedding.N != self.shape[0]:
            raise EmbeddingError(
                f"target embedding partitions {embedding.N} rows, matrix "
                f"has {self.shape[0]}"
            )
        if embedding.same_partition(self.embedding):
            return self
        with machine.phase("sparse_remap"):
            row_nnz = self.row_nnz()
            old_rank = self.embedding.rank_table()
            new_rank = embedding.rank_table()
            moved = old_rank != new_rank
            words = 2 * row_nnz + 1
            src_pids = np.asarray(
                self.embedding.owner_table()[moved], dtype=np.int64
            )
            dst_pids = np.asarray(embedding.owner_table()[moved], dtype=np.int64)
            if src_pids.size:
                # Aggregate row packets per (src, dst) pair, in sorted order
                # so the message multiset (and its plan-cache key) is
                # deterministic.
                pair = src_pids * machine.p + dst_pids
                uniq, inverse = np.unique(pair, return_inverse=True)
                sizes = np.bincount(
                    inverse, weights=words[moved].astype(np.float64)
                )
                out_per_rank = np.bincount(
                    src_pids, weights=words[moved].astype(np.float64),
                    minlength=machine.p,
                )
                in_per_rank = np.bincount(
                    dst_pids, weights=words[moved].astype(np.float64),
                    minlength=machine.p,
                )
                machine.charge_local(float(out_per_rank.max()))
                Router(machine).simulate(
                    uniq // machine.p, uniq % machine.p, sizes
                )
                machine.charge_local(float(in_per_rank.max()))
        rows, cols, data = self.to_coo()
        return SparseMatrix.from_coo(
            machine, rows, cols, data, self.shape, embedding=embedding
        )

    def rebalance(self) -> "SparseMatrix":
        """Repartition onto the nnz-balanced layout for the current pattern."""
        target = SparseEmbedding.nnz_balanced(self.machine, self.row_nnz())
        return self.repartition(target)

    def __repr__(self) -> str:
        return (
            f"SparseMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"p={self.machine.p})"
        )


class SparseVector:
    """A length-``L`` vector in per-rank dense segments with a fill value.

    ``fill`` is the ambient semiring's zero: entries equal to it are
    "absent" — :func:`~repro.sparse.primitives.spmv` neither ships nor
    multiplies through them (the annihilator shortcut).
    """

    def __init__(
        self,
        machine: Hypercube,
        embedding: SparseEmbedding,
        blocks: List[np.ndarray],
        fill: Any,
    ) -> None:
        if len(blocks) != machine.p:
            raise ShapeError(
                f"expected {machine.p} per-rank blocks, got {len(blocks)}"
            )
        counts = embedding.counts
        for r, blk in enumerate(blocks):
            if blk.shape != (counts[r],):
                raise ShapeError(
                    f"rank {r} block has shape {blk.shape}, embedding "
                    f"expects ({int(counts[r])},)"
                )
        self.machine = machine
        self.embedding = embedding
        self.blocks = blocks
        self.fill = blocks[0].dtype.type(fill) if blocks else fill

    @classmethod
    def from_numpy(
        cls,
        machine: Hypercube,
        values: np.ndarray,
        fill: Any = 0,
        embedding: Optional[SparseEmbedding] = None,
    ) -> "SparseVector":
        """Load a host vector (front-end I/O; not timed)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ShapeError(f"expected a 1-D vector, got shape {values.shape}")
        if embedding is None:
            embedding = SparseEmbedding.balanced(machine, values.size)
        elif embedding.machine is not machine:
            raise EmbeddingError("embedding belongs to a different machine")
        blocks = [blk.copy() for blk in embedding.split(values)]
        return cls(machine, embedding, blocks, fill)

    @classmethod
    def full(
        cls,
        machine: Hypercube,
        embedding: SparseEmbedding,
        fill: Any,
        dtype: Any,
    ) -> "SparseVector":
        """An all-``fill`` (empty) vector on the given partition."""
        blocks = [
            np.full(int(c), fill, dtype=dtype) for c in embedding.counts
        ]
        return cls(machine, embedding, blocks, fill)

    @property
    def L(self) -> int:
        return self.embedding.N

    @property
    def dtype(self) -> np.dtype:
        return self.blocks[0].dtype if self.blocks else np.dtype(np.float64)

    @property
    def nnz(self) -> int:
        """Entries different from ``fill`` (present elements)."""
        return int(sum(int((blk != self.fill).sum()) for blk in self.blocks))

    def to_numpy(self) -> np.ndarray:
        """Read back to the host (front-end I/O; not timed)."""
        return np.concatenate(self.blocks) if self.blocks else np.zeros(0)

    def copy(self) -> "SparseVector":
        return SparseVector(
            self.machine,
            self.embedding,
            [blk.copy() for blk in self.blocks],
            self.fill,
        )

    def elementwise(
        self, other: "SparseVector", op, fill: Any
    ) -> "SparseVector":
        """Aligned elementwise combine: one SIMD pass, no communication.

        Both operands must share the partition; the pass is charged at the
        largest per-rank segment (lockstep).
        """
        if not self.embedding.same_partition(other.embedding):
            raise EmbeddingError(
                "elementwise operands must share the sparse partition"
            )
        self.machine.charge_flops(self.embedding.max_count)
        blocks = [op(a, b) for a, b in zip(self.blocks, other.blocks)]
        return SparseVector(self.machine, self.embedding, blocks, fill)

    def map(self, fn, fill: Any) -> "SparseVector":
        """Unary elementwise transform: one SIMD pass."""
        self.machine.charge_flops(self.embedding.max_count)
        blocks = [fn(blk) for blk in self.blocks]
        return SparseVector(self.machine, self.embedding, blocks, fill)

    def __repr__(self) -> str:
        return (
            f"SparseVector(L={self.L}, nnz={self.nnz}, fill={self.fill!r}, "
            f"p={self.machine.p})"
        )


__all__ = ["SparseMatrix", "SparseVector"]
