"""Semirings: the algebra parameterizing the sparse primitives.

A :class:`Semiring` bundles an *additive* monoid (reused from the
collectives' :class:`~repro.comm.ops.CombineOp`, so the same identity
machinery drives reductions and sparse accumulation) with a *multiplicative*
binary ufunc and its identity.  Following the GraphBLAS "Standards for Graph
Algorithm Primitives" formulation, the registered semirings are the three
that turn :func:`~repro.sparse.primitives.spmv` /
:func:`~repro.sparse.primitives.spgemm` into graph workloads:

==========  =============  =============  ========  =======  ============
name        add (⊕)        mul (⊗)        zero      one      use
==========  =============  =============  ========  =======  ============
plus_times  ``+``          ``*``          0         1        linear algebra
min_plus    ``min``        ``+``          +∞ / max  0        shortest paths
or_and      ``or``         ``and``        False     True     reachability
==========  =============  =============  ========  =======  ============

The *zero* is the additive identity **and** the multiplicative annihilator
(``zero ⊗ x = zero`` for every ``x``); the sparse primitives rely on this to
skip absent operands entirely.  For integer dtypes ``min_plus``'s zero is
the dtype's maximum (the usual saturating "integer infinity"); the
primitives never multiply through it — annihilation is applied by masking,
not arithmetic — so integer min-plus stays exact with no overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np

from ..comm import ops
from ..errors import ConfigError


@dataclass(frozen=True)
class Semiring:
    """A (⊕, ⊗) pair with identities, driving the sparse primitives.

    ``add`` is a :class:`~repro.comm.ops.CombineOp` (associative,
    commutative, with a dtype-dependent identity); ``mul`` is a binary
    NumPy ufunc whose identity is ``one`` and whose annihilator is the
    additive identity ``zero``.
    """

    name: str
    add: ops.CombineOp
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul_name: str
    _one: Callable[[np.dtype], Any]

    def zero(self, dtype: Any) -> Any:
        """The additive identity / multiplicative annihilator for ``dtype``."""
        return self.add.identity(dtype)

    def one(self, dtype: Any) -> Any:
        """The multiplicative identity for ``dtype``."""
        return self._one(np.dtype(dtype))

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.mul(a, b)

    def accumulate_at(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray
    ) -> None:
        """Scatter-accumulate ``values`` into ``out`` under ⊕ (unbuffered)."""
        self.add.ufunc.at(out, index, values)

    def reduceat(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segmented ⊕-reduction (NumPy ``reduceat`` semantics)."""
        return self.add.ufunc.reduceat(values, starts)

    def __repr__(self) -> str:
        return f"Semiring({self.name}: {self.add.name}.{self.mul_name})"


def _one_scalar(dtype: np.dtype) -> Any:
    return dtype.type(1)


def _zero_scalar(dtype: np.dtype) -> Any:
    return dtype.type(0)


#: Ordinary linear algebra: ⊕ = +, ⊗ = ×.
PLUS_TIMES = Semiring("plus_times", ops.SUM, np.multiply, "times", _one_scalar)

#: Tropical / shortest-path semiring: ⊕ = min, ⊗ = +.  The zero is the
#: dtype's +∞ (floats) or maximum (ints); ⊗'s identity is 0.
MIN_PLUS = Semiring("min_plus", ops.MIN, np.add, "plus", _zero_scalar)

#: Boolean reachability semiring: ⊕ = or, ⊗ = and.
OR_AND = Semiring("or_and", ops.ANY, np.logical_and, "and", lambda dt: True)

_REGISTRY: Dict[str, Semiring] = {
    sr.name: sr for sr in (PLUS_TIMES, MIN_PLUS, OR_AND)
}


def semiring_names() -> tuple:
    """Registered semiring names, in registration order."""
    return tuple(_REGISTRY)


def get_semiring(semiring: "Semiring | str") -> Semiring:
    """Resolve a semiring given either the object or its registry name."""
    if isinstance(semiring, Semiring):
        return semiring
    try:
        return _REGISTRY[semiring]
    except KeyError:
        raise ConfigError(
            f"unknown semiring {semiring!r}; known: {sorted(_REGISTRY)}"
        ) from None


__all__ = [
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "Semiring",
    "get_semiring",
    "semiring_names",
]
