"""Load-balanced one-dimensional partitions.

A :class:`Layout` splits ``n`` global indices over ``parts`` partitions so
that no partition holds more than ``ceil(n/parts)`` items — the paper's
load-balance requirement.  Two classical schemes are provided:

* :class:`BlockLayout` — the *consecutive* partition: part ``q`` holds a
  contiguous run of indices (the first ``n mod parts`` parts hold one extra).
* :class:`CyclicLayout` — the *cyclic* partition: index ``g`` lives in part
  ``g mod parts`` at slot ``g // parts``.

Every partition stores its items in a fixed-capacity local array of
``capacity = ceil(n/parts)`` slots (SIMD machines need uniform local
shapes); slots beyond a part's count are padding and are masked out by
:meth:`valid_mask`.

All index maps are vectorised over NumPy arrays.
"""

from __future__ import annotations

import abc
from typing import Tuple, Union

import numpy as np
from ..errors import ConfigError

IntArray = Union[int, np.ndarray]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Layout(abc.ABC):
    """A balanced partition of ``n`` indices over ``parts`` partitions."""

    def __init__(self, n: int, parts: int) -> None:
        if n < 0:
            raise ConfigError(f"n must be >= 0, got {n}")
        if parts < 1:
            raise ConfigError(f"parts must be >= 1, got {parts}")
        self.n = n
        self.parts = parts
        self.capacity = _ceil_div(n, parts) if n else 0

    # -- abstract maps -----------------------------------------------------

    @abc.abstractmethod
    def owner(self, g: IntArray) -> IntArray:
        """Partition index holding global index ``g``."""

    @abc.abstractmethod
    def slot(self, g: IntArray) -> IntArray:
        """Local slot of global index ``g`` within its partition."""

    @abc.abstractmethod
    def global_index(self, part: IntArray, slot: IntArray) -> IntArray:
        """Global index stored at ``(part, slot)``; only valid slots."""

    @abc.abstractmethod
    def count(self, part: IntArray) -> IntArray:
        """Number of valid items in ``part``."""

    # -- shared helpers ------------------------------------------------------

    def owner_slot(self, g: IntArray) -> Tuple[IntArray, IntArray]:
        return self.owner(g), self.slot(g)

    def valid_mask(self, part: int) -> np.ndarray:
        """Boolean mask of shape ``(capacity,)``: which slots hold real items."""
        return np.arange(self.capacity) < int(self.count(part))

    def all_valid_masks(self) -> np.ndarray:
        """Masks for every part, shape ``(parts, capacity)``."""
        counts = self.count(np.arange(self.parts))
        return np.arange(self.capacity)[None, :] < np.asarray(counts)[:, None]

    def all_global_indices(self) -> np.ndarray:
        """Global index per (part, slot), shape ``(parts, capacity)``.

        Padding slots receive the index of the part's last valid item
        (an arbitrary in-range value; consumers must apply the valid mask).
        Empty machines (n == 0) return an empty array.
        """
        if self.n == 0:
            return np.zeros((self.parts, 0), dtype=np.int64)
        parts = np.arange(self.parts)[:, None]
        slots = np.arange(self.capacity)[None, :]
        counts = np.asarray(self.count(np.arange(self.parts)))[:, None]
        clamped = np.minimum(slots, np.maximum(counts - 1, 0))
        # Parts with zero items keep slot 0 of part 0's value; masked anyway.
        safe_parts = np.where(counts > 0, parts, self._any_nonempty_part())
        return np.asarray(self.global_index(safe_parts, clamped), dtype=np.int64)

    def _any_nonempty_part(self) -> int:
        counts = np.asarray(self.count(np.arange(self.parts)))
        nonempty = np.nonzero(counts > 0)[0]
        return int(nonempty[0]) if nonempty.size else 0

    def is_balanced(self) -> bool:
        """True iff max part size <= ceil(n/parts) (always holds here)."""
        counts = np.asarray(self.count(np.arange(self.parts)))
        return bool(counts.max(initial=0) <= self.capacity)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, parts={self.parts})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.n == other.n  # type: ignore[attr-defined]
            and self.parts == other.parts  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.n, self.parts))


class BlockLayout(Layout):
    """Consecutive partition; first ``n mod parts`` parts get one extra item."""

    def __init__(self, n: int, parts: int) -> None:
        super().__init__(n, parts)
        base, extra = divmod(n, parts)
        self._base = base
        self._extra = extra
        # Offset of part q: q*base + min(q, extra)
        self._offsets = (
            np.arange(parts + 1, dtype=np.int64) * base
            + np.minimum(np.arange(parts + 1), extra)
        )

    def owner(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        out = np.searchsorted(self._offsets, g, side="right") - 1
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def slot(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        owner = np.searchsorted(self._offsets, g, side="right") - 1
        out = g - self._offsets[owner]
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def global_index(self, part: IntArray, slot: IntArray) -> IntArray:
        part = np.asarray(part)
        slot = np.asarray(slot)
        out = self._offsets[part] + slot
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def count(self, part: IntArray) -> IntArray:
        part = np.asarray(part)
        out = self._offsets[part + 1] - self._offsets[part]
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def offset(self, part: IntArray) -> IntArray:
        """First global index of ``part``."""
        part = np.asarray(part)
        out = self._offsets[part]
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def _check_global(self, g: np.ndarray) -> None:
        if g.size and (g.min() < 0 or g.max() >= self.n):
            raise IndexError(
                f"global index out of range [0, {self.n}) in {self!r}"
            )


class CyclicLayout(Layout):
    """Cyclic partition: index ``g`` → part ``g % parts``, slot ``g // parts``."""

    def owner(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        out = g % self.parts
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def slot(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        out = g // self.parts
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def global_index(self, part: IntArray, slot: IntArray) -> IntArray:
        part = np.asarray(part)
        slot = np.asarray(slot)
        out = slot * self.parts + part
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def count(self, part: IntArray) -> IntArray:
        part = np.asarray(part)
        out = (self.n - part + self.parts - 1) // self.parts
        out = np.maximum(out, 0)
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def _check_global(self, g: np.ndarray) -> None:
        if g.size and (g.min() < 0 or g.max() >= self.n):
            raise IndexError(
                f"global index out of range [0, {self.n}) in {self!r}"
            )


class BlockCyclicLayout(Layout):
    """Block-cyclic partition: blocks of ``block`` indices dealt round-robin.

    The ScaLAPACK-style generalisation: ``block=1`` degenerates to
    :class:`CyclicLayout`; ``block >= ceil(n/parts)`` to
    :class:`BlockLayout`.  Index ``g`` belongs to block ``g // block``,
    which lands on part ``(g // block) % parts`` at block-slot
    ``(g // block) // parts``.
    """

    def __init__(self, n: int, parts: int, block: int = 2) -> None:
        if block < 1:
            raise ConfigError(f"block size must be >= 1, got {block}")
        super().__init__(n, parts)
        self.block = block
        # capacity must cover the worst part: full blocks dealt to it
        nblocks = _ceil_div(n, block) if n else 0
        blocks_per_part = _ceil_div(nblocks, parts) if nblocks else 0
        self.capacity = blocks_per_part * block if n else 0
        if n:
            # tighten: the last block of the worst part may be short
            counts = self.count(np.arange(parts))
            self.capacity = int(np.max(counts)) if np.max(counts) else 0

    def owner(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        out = (g // self.block) % self.parts
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def slot(self, g: IntArray) -> IntArray:
        g = np.asarray(g)
        self._check_global(g)
        block_slot = (g // self.block) // self.parts
        out = block_slot * self.block + (g % self.block)
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def global_index(self, part: IntArray, slot: IntArray) -> IntArray:
        part = np.asarray(part)
        slot = np.asarray(slot)
        block_slot = slot // self.block
        within = slot % self.block
        out = (block_slot * self.parts + part) * self.block + within
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def count(self, part: IntArray) -> IntArray:
        part = np.asarray(part)
        nblocks = _ceil_div(self.n, self.block)
        full_rounds = nblocks // self.parts
        rem = nblocks % self.parts
        blocks_here = full_rounds + (part < rem)
        counts = blocks_here * self.block
        # the globally-last block may be short; it lives on part
        # (nblocks-1) % parts
        if self.n and self.n % self.block:
            short_by = self.block - (self.n % self.block)
            last_owner = (nblocks - 1) % self.parts
            counts = counts - np.where(part == last_owner, short_by, 0)
        out = np.maximum(counts, 0)
        return int(out) if out.ndim == 0 else out.astype(np.int64)

    def _check_global(self, g: np.ndarray) -> None:
        if g.size and (g.min() < 0 or g.max() >= self.n):
            raise IndexError(
                f"global index out of range [0, {self.n}) in {self!r}"
            )

    def __repr__(self) -> str:
        return (
            f"BlockCyclicLayout(n={self.n}, parts={self.parts}, "
            f"block={self.block})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.n == other.n  # type: ignore[attr-defined]
            and self.parts == other.parts  # type: ignore[attr-defined]
            and self.block == other.block  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash(("BlockCyclicLayout", self.n, self.parts, self.block))


def make_layout(kind: str, n: int, parts: int) -> Layout:
    """Factory: ``'block'``, ``'cyclic'``, or ``'block_cyclic[:B]'``.

    The block-cyclic block size defaults to 2 and is selected with a
    suffix, e.g. ``'block_cyclic:4'``.
    """
    if kind == "block":
        return BlockLayout(n, parts)
    if kind == "cyclic":
        return CyclicLayout(n, parts)
    if kind == "block_cyclic" or kind.startswith("block_cyclic:"):
        block = 2
        if ":" in kind:
            try:
                block = int(kind.split(":", 1)[1])
            except ValueError:
                raise ConfigError(
                    f"bad block size in layout kind {kind!r}"
                ) from None
        return BlockCyclicLayout(n, parts, block)
    raise ConfigError(
        f"unknown layout kind {kind!r}; expected 'block', 'cyclic' or "
        "'block_cyclic[:B]'"
    )
