"""Binary-reflected Gray codes.

The paper's load-balanced embeddings place grid coordinate ``g`` on cube
node ``gray(g)`` so that *adjacent grid rows/columns are cube neighbours* —
the classic binary-reflected Gray code (BRGC) embedding of a ring/array in a
Boolean cube (Johnsson's embedding papers).  All functions are vectorised
over NumPy integer arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from ..errors import ConfigError

IntLike = Union[int, np.ndarray]


def gray(i: IntLike) -> IntLike:
    """The binary-reflected Gray code of ``i``: ``i ^ (i >> 1)``."""
    i = np.asarray(i)
    if i.size and i.min() < 0:
        raise ConfigError("Gray code argument must be non-negative")
    out = i ^ (i >> 1)
    return int(out) if out.ndim == 0 else out


def gray_rank(code: IntLike, nbits: int = 63) -> IntLike:
    """Inverse Gray code: the rank ``i`` with ``gray(i) == code``.

    Computed by the standard prefix-XOR fold; ``nbits`` bounds the fold
    depth (63 covers any int64).
    """
    code = np.asarray(code)
    if code.size and code.min() < 0:
        raise ConfigError("Gray code must be non-negative")
    out = code.copy()
    shift = 1
    while shift <= nbits:
        out = out ^ (out >> shift)
        shift <<= 1
    return int(out) if out.ndim == 0 else out


def gray_neighbors_differ_by_one_bit(k: int) -> bool:
    """Check the defining BRGC property over all ``2**k`` codes.

    Consecutive ranks (cyclically, including the wrap-around ``2**k - 1 → 0``)
    map to codes at Hamming distance one.  Used by tests and as an executable
    statement of why the embedding gives dilation-1 ring embeddings.
    """
    if k < 0:
        raise ConfigError("k must be >= 0")
    if k == 0:
        return True
    n = 1 << k
    ranks = np.arange(n)
    codes = gray(ranks)
    diffs = codes ^ np.roll(codes, -1)
    popcounts = np.array([bin(int(d)).count("1") for d in diffs])
    return bool(np.all(popcounts == 1))


def hamming_distance(a: IntLike, b: IntLike) -> IntLike:
    """Number of differing bits: cube distance between node addresses."""
    x = np.asarray(a) ^ np.asarray(b)
    x = x.astype(np.uint64)
    count = np.zeros_like(x)
    while np.any(x):
        count += (x & 1).astype(count.dtype)
        x = x >> 1
    out = count.astype(np.int64)
    return int(out) if out.ndim == 0 else out


def deposit_bits(value: IntLike, dims: tuple) -> IntLike:
    """Scatter the low bits of ``value`` into bit positions ``dims``.

    Bit ``k`` of ``value`` lands at bit position ``dims[k]`` of the result.
    This is how a Gray-coded grid coordinate is packed into the subset of
    cube dimensions assigned to that grid axis.
    """
    value = np.asarray(value)
    out = np.zeros_like(value)
    for k, d in enumerate(dims):
        out = out | (((value >> k) & 1) << d)
    return int(out) if out.ndim == 0 else out


def extract_bits(value: IntLike, dims: tuple) -> IntLike:
    """Gather bit positions ``dims`` of ``value`` into a compact integer.

    Inverse of :func:`deposit_bits`: bit position ``dims[k]`` becomes bit
    ``k`` of the result.
    """
    value = np.asarray(value)
    out = np.zeros_like(value)
    for k, d in enumerate(dims):
        out = out | (((value >> d) & 1) << k)
    return int(out) if out.ndim == 0 else out
