"""Load-balanced embeddings of vectors and matrices in the Boolean cube.

Gray-code address machinery, balanced 1-D layouts, the paper's matrix and
vector embeddings, and the embedding-change (remap/transpose) operations.
"""

from .gray import (
    deposit_bits,
    extract_bits,
    gray,
    gray_neighbors_differ_by_one_bit,
    gray_rank,
    hamming_distance,
)
from .layout import (
    BlockCyclicLayout,
    BlockLayout,
    CyclicLayout,
    Layout,
    make_layout,
)
from .matrix import MatrixEmbedding, split_dims
from .remap import redistribute_matrix, remap_vector, transpose
from .vector import (
    ColAlignedEmbedding,
    RowAlignedEmbedding,
    VectorEmbedding,
    VectorOrderEmbedding,
)

__all__ = [
    "gray",
    "gray_rank",
    "gray_neighbors_differ_by_one_bit",
    "hamming_distance",
    "deposit_bits",
    "extract_bits",
    "Layout",
    "BlockLayout",
    "BlockCyclicLayout",
    "CyclicLayout",
    "make_layout",
    "MatrixEmbedding",
    "split_dims",
    "VectorEmbedding",
    "VectorOrderEmbedding",
    "RowAlignedEmbedding",
    "ColAlignedEmbedding",
    "remap_vector",
    "redistribute_matrix",
    "transpose",
]
