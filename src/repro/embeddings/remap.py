"""Changing embeddings: vector remaps, matrix redistribution, transpose.

"The primitives may indicate a change from one embedding to another"
(abstract).  This module implements those changes:

* :func:`remap_vector` — move a vector between any two
  :class:`~.vector.VectorEmbedding`\\ s (vector order ↔ row order ↔ column
  order, residence changes, replication);
* :func:`redistribute_matrix` — move a matrix between two
  :class:`~.matrix.MatrixEmbedding`\\ s (grid reshape, layout change);
* :func:`transpose` — transpose a matrix, which on the cube is a *stable
  dimension permutation* (the row and column dimension sets swap roles).

Cost fidelity: the data motion between primary copies is charged by
running the e-cube :class:`~repro.machine.router.Router` over the exact
multiset of (source, destination, element-count) messages the change
induces, so congestion effects are captured; a replicated destination then
pays real broadcast rounds over the orthogonal subcube.  The functional
data movement itself is performed through a host-side image, which is
exact and keeps the simulator fast.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.plans import MISSING, RemapPlan
from ..machine.pvar import PVar
from ..machine.router import Router, RouteStats
from ..obs.tracer import maybe_span
from .. import comm
from .gray import deposit_bits
from .matrix import MatrixEmbedding
from .vector import VectorEmbedding, _AlignedEmbedding


def _charge_messages(
    machine: Hypercube, src_pid: np.ndarray, dst_pid: np.ndarray
) -> None:
    """Charge the router for one element flowing src→dst per array entry."""
    moving = src_pid != dst_pid
    if not np.any(moving):
        return
    pair = src_pid[moving].astype(np.int64) * machine.p + dst_pid[moving]
    pairs, counts = np.unique(pair, return_counts=True)
    Router(machine).simulate(
        pairs // machine.p, pairs % machine.p, counts.astype(np.float64)
    )


def _route_stats(
    machine: Hypercube, src_pid: np.ndarray, dst_pid: np.ndarray
) -> "RouteStats | None":
    """Uncharged :class:`RouteStats` of the multiset :func:`_charge_messages`
    would route, or ``None`` when no element changes processors.

    ``Router.simulate`` ends in one ``charge_transfer(element_hops, rounds,
    time)`` call, so replaying the returned stats later (see
    :meth:`RemapPlan.charge`) is bit-identical to charging here.
    """
    moving = src_pid != dst_pid
    if not np.any(moving):
        return None
    pair = src_pid[moving].astype(np.int64) * machine.p + dst_pid[moving]
    pairs, counts = np.unique(pair, return_counts=True)
    return Router(machine).simulate(
        pairs // machine.p,
        pairs % machine.p,
        counts.astype(np.float64),
        charge=False,
    )


def _row_pid_parts(emb: MatrixEmbedding) -> np.ndarray:
    """Per-global-row contribution to the owner pid (length ``R``)."""
    gr, _ = emb.row_owner_table()
    return deposit_bits(emb.code(gr), emb.row_dims)


def _col_pid_parts(emb: MatrixEmbedding) -> np.ndarray:
    """Per-global-column contribution to the owner pid (length ``C``)."""
    gc, _ = emb.col_owner_table()
    return deposit_bits(emb.code(gc), emb.col_dims)


def remap_vector(
    pvar: PVar,
    src: VectorEmbedding,
    dst: VectorEmbedding,
) -> PVar:
    """Move a vector from embedding ``src`` to embedding ``dst``.

    Charges the primary-to-primary routing plus, when ``dst`` is
    replicated, a broadcast over its orthogonal subcube.  Also charges one
    local pack/unpack pass on each side.
    """
    if src.machine is not dst.machine:
        raise EmbeddingError(
            f"embeddings live on different machines: {src.signature()} vs "
            f"{dst.signature()}"
        )
    if src.L != dst.L:
        raise ShapeError(
            f"vector length mismatch: {src.L} ({src.signature()}) != "
            f"{dst.L} ({dst.signature()})"
        )
    machine = src.machine
    if src.compatible(dst):
        return pvar

    with maybe_span(
        machine, "remap_vector", "remap",
        src=type(src).__name__, dst=type(dst).__name__, L=src.L,
    ):
        host = src.gather(pvar)

        plans = machine.plans
        if plans.enabled:
            key = ("remap-vector", src.signature(), dst.signature())
            plan = plans.lookup(key)
            if plan is MISSING:
                src_pid, _ = src.owner_slot_table()
                dst_pid, _ = dst.owner_slot_table()
                plan = plans.store(
                    key,
                    RemapPlan(
                        src_local=src.local_size,
                        dst_local=dst.local_size,
                        route=_route_stats(machine, src_pid, dst_pid),
                    ),
                )
            plan.charge(machine)  # pack, route, unpack — seed's sequence
        else:
            g = np.arange(src.L)
            src_pid, _ = src.owner_slot(g)
            dst_pid, _ = dst.owner_slot(g)
            machine.charge_local(src.local_size)  # pack
            _charge_messages(machine, np.asarray(src_pid), np.asarray(dst_pid))
            machine.charge_local(dst.local_size)  # unpack

        out = dst.scatter(host)
        if dst.replicated:
            if not isinstance(dst, _AlignedEmbedding):
                raise EmbeddingError(
                    f"replicated destination must be an aligned embedding, "
                    f"got {type(dst).__name__} {dst.signature()}"
                )
            # Primary copies live at across-coordinate 0 (grid Gray rank 0);
            # replicate them over the orthogonal subcube with a real
            # broadcast.
            out = comm.broadcast(
                machine, out, dims=dst.across_dims, root_rank=0
            )
        return out


def redistribute_matrix(
    pvar: PVar,
    src: MatrixEmbedding,
    dst: MatrixEmbedding,
) -> PVar:
    """Move a matrix between two embeddings of the same global shape."""
    if src.machine is not dst.machine:
        raise EmbeddingError(
            f"embeddings live on different machines: {src.signature()} vs "
            f"{dst.signature()}"
        )
    if (src.R, src.C) != (dst.R, dst.C):
        raise ShapeError(
            f"matrix shape mismatch: {src.R}x{src.C} ({src.signature()}) "
            f"!= {dst.R}x{dst.C} ({dst.signature()})"
        )
    machine = src.machine
    if src == dst:
        return pvar

    with maybe_span(
        machine, "redistribute", "remap", R=src.R, C=src.C,
    ):
        host = src.gather(pvar)

        plans = machine.plans
        if plans.enabled:
            key = ("redistribute", src.signature(), dst.signature())
            plan = plans.lookup(key)
            if plan is MISSING:
                # Owner pids separate over the axes (pid = row_part |
                # col_part), so the R x C owner maps are two outer ORs —
                # no meshgrid of R*C index vectors needed.
                src_pid = (
                    _row_pid_parts(src)[:, None] | _col_pid_parts(src)[None, :]
                )
                dst_pid = (
                    _row_pid_parts(dst)[:, None] | _col_pid_parts(dst)[None, :]
                )
                plan = plans.store(
                    key,
                    RemapPlan(
                        src_local=src.local_size,
                        dst_local=dst.local_size,
                        route=_route_stats(machine, src_pid, dst_pid),
                    ),
                )
            plan.charge(machine)
        else:
            ii, jj = np.meshgrid(
                np.arange(src.R), np.arange(src.C), indexing="ij"
            )
            ii = ii.ravel()
            jj = jj.ravel()
            src_pid = np.asarray(src.owner(ii, jj))
            dst_pid = np.asarray(dst.owner(ii, jj))
            machine.charge_local(src.local_size)
            _charge_messages(machine, src_pid, dst_pid)
            machine.charge_local(dst.local_size)
        return dst.scatter(host)


def transpose(
    pvar: PVar,
    src: MatrixEmbedding,
    same_grid: bool = False,
) -> Tuple[PVar, MatrixEmbedding]:
    """Transpose an embedded matrix.

    Two destination embeddings are supported:

    * ``same_grid=False`` (default): the destination is
      :meth:`~.matrix.MatrixEmbedding.transposed` — the row and column
      cube-dimension sets *swap roles*.  Element ``(j, i)`` of the result
      then lives exactly where ``(i, j)`` already sits, so the transpose is
      almost free: a local block transpose, no communication.  This is the
      embedding-change flexibility the primitives are designed around.

    * ``same_grid=True``: the destination keeps the source's dimension
      assignment (``row_dims`` still carry the row axis), which is what a
      caller needs to combine ``A`` and ``A^T`` elementwise.  This is the
      classic *stable dimension permutation*: data crosses the cube and
      the router charges the real congestion.
    """
    machine = src.machine
    if same_grid:
        dst = MatrixEmbedding(
            machine,
            src.C,
            src.R,
            row_dims=src.row_dims,
            col_dims=src.col_dims,
            row_layout_kind=src._row_layout_kind,
            col_layout_kind=src._col_layout_kind,
            coding=src.coding,
        )
    else:
        dst = src.transposed()

    host = src.gather(pvar)
    # Swap only the matrix axes: a batched host image keeps its trailing
    # run axis in place.
    hostT = np.ascontiguousarray(np.swapaxes(host, 0, 1))

    with maybe_span(
        machine, "transpose", "remap", R=src.R, C=src.C, same_grid=same_grid,
    ):
        if not same_grid:
            # Relabelling transpose: ``transposed()`` swaps the dimension
            # sets and layouts, so ``dst.owner(j, i) == src.owner(i, j)``
            # identically — the message multiset is empty and the seed's
            # router call charged nothing.  Skip the R x C owner
            # computation outright (valid with the plan cache on or off).
            machine.charge_local(src.local_size)
            machine.charge_local(dst.local_size)
            return dst.scatter(hostT), dst

        plans = machine.plans
        if plans.enabled:
            key = ("transpose-samegrid", src.signature())
            plan = plans.lookup(key)
            if plan is MISSING:
                # Element (i, j) moves to where (j, i) of the destination
                # lives; both owner maps split into per-axis pid parts.
                src_pid = (
                    _row_pid_parts(src)[:, None] | _col_pid_parts(src)[None, :]
                )
                dst_pid = (
                    _col_pid_parts(dst)[:, None] | _row_pid_parts(dst)[None, :]
                )
                plan = plans.store(
                    key,
                    RemapPlan(
                        src_local=src.local_size,
                        dst_local=dst.local_size,
                        route=_route_stats(machine, src_pid, dst_pid),
                    ),
                )
            plan.charge(machine)
        else:
            ii, jj = np.meshgrid(
                np.arange(src.R), np.arange(src.C), indexing="ij"
            )
            ii = ii.ravel()
            jj = jj.ravel()
            src_pid = np.asarray(src.owner(ii, jj))
            dst_pid = np.asarray(dst.owner(jj, ii))
            machine.charge_local(src.local_size)
            _charge_messages(machine, src_pid, dst_pid)
            machine.charge_local(dst.local_size)
        return dst.scatter(hostT), dst
