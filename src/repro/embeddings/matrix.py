"""Load-balanced embeddings of dense matrices in the cube.

A matrix is embedded by viewing the ``2**n`` processors as a
``Pr × Pc = 2**nr × 2**nc`` grid: ``nr`` cube dimensions (``row_dims``)
carry the grid's matrix-row axis and the remaining ``nc`` (``col_dims``)
the matrix-column axis.  Grid coordinates map to cube nodes through the
binary-reflected Gray code, so grid-adjacent processors are cube
neighbours.  Within the grid, matrix rows are split over the ``Pr`` grid
rows and columns over the ``Pc`` grid columns by a 1-D :class:`~.layout.Layout`
(consecutive or cyclic), giving every processor a local block of at most
``ceil(R/Pr) × ceil(C/Pc)`` elements — the paper's load-balance guarantee
for arbitrary ``R × C``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError, EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.plans import readonly
from ..machine.pvar import PVar
from .gray import deposit_bits, extract_bits, gray, gray_rank
from .layout import Layout, make_layout


def split_dims(n: int, R: int, C: int) -> Tuple[int, int]:
    """Choose ``(nr, nc)`` with ``nr + nc == n`` matching the matrix aspect.

    The grid aspect ratio ``Pr/Pc`` should track ``R/C`` so that local
    blocks stay close to square and per-processor load is minimal — the
    alignment rule from Johnsson & Ho's matrix-shape analyses that the
    paper adopts.
    """
    if n < 0:
        raise ConfigError("n must be >= 0")
    if R < 1 or C < 1:
        raise ShapeError(f"matrix extents must be >= 1, got {R}x{C}")
    best = None
    for nr in range(n + 1):
        nc = n - nr
        lr = -(-R // (1 << nr))
        lc = -(-C // (1 << nc))
        load = lr * lc
        key = (load, abs(nr - nc))
        if best is None or key < best[0]:
            best = (key, (nr, nc))
    return best[1]


class MatrixEmbedding:
    """An ``R × C`` matrix on a Gray-coded ``Pr × Pc`` processor grid.

    Parameters
    ----------
    machine:
        The hypercube.
    R, C:
        Global matrix extents.
    row_dims, col_dims:
        Disjoint cube dimension subsets carrying the grid's row and column
        axes; together they must cover all ``machine.n`` dimensions.
    row_layout_kind, col_layout_kind:
        ``'block'`` (consecutive) or ``'cyclic'`` partition of rows over
        grid rows and columns over grid columns.
    """

    def __init__(
        self,
        machine: Hypercube,
        R: int,
        C: int,
        row_dims: Tuple[int, ...],
        col_dims: Tuple[int, ...],
        row_layout_kind: str = "block",
        col_layout_kind: str = "block",
        coding: str = "gray",
    ) -> None:
        if coding not in ("gray", "binary"):
            raise EmbeddingError(
                f"coding must be 'gray' or 'binary', got {coding!r}"
            )
        if R < 1 or C < 1:
            raise ShapeError(f"matrix extents must be >= 1, got {R}x{C}")
        row_dims = machine.check_dims(row_dims)
        col_dims = machine.check_dims(col_dims)
        overlap = set(row_dims) & set(col_dims)
        if overlap:
            raise EmbeddingError(
                f"row/col dims overlap: {sorted(overlap)} "
                f"(row_dims={row_dims}, col_dims={col_dims})"
            )
        if len(row_dims) + len(col_dims) != machine.n:
            raise EmbeddingError(
                f"row_dims {row_dims} + col_dims {col_dims} must cover all "
                f"{machine.n} cube dims"
            )
        self.machine = machine
        self.R = R
        self.C = C
        self.row_dims = row_dims
        self.col_dims = col_dims
        self.Pr = 1 << len(row_dims)
        self.Pc = 1 << len(col_dims)
        self.row_layout: Layout = make_layout(row_layout_kind, R, self.Pr)
        self.col_layout: Layout = make_layout(col_layout_kind, C, self.Pc)
        self._row_layout_kind = row_layout_kind
        self._col_layout_kind = col_layout_kind
        self.coding = coding
        pids = machine.pids()
        self._grid_r = self.decode(extract_bits(pids, row_dims))
        self._grid_c = self.decode(extract_bits(pids, col_dims))

    # -- factories -------------------------------------------------------------

    @classmethod
    def default(
        cls,
        machine: Hypercube,
        R: int,
        C: int,
        layout: str = "block",
        coding: str = "gray",
    ) -> "MatrixEmbedding":
        """Aspect-matched grid split, same layout kind on both axes."""
        nr, nc = split_dims(machine.n, R, C)
        dims = machine.dims
        return cls(
            machine,
            R,
            C,
            row_dims=dims[:nr],
            col_dims=dims[nr:],
            row_layout_kind=layout,
            col_layout_kind=layout,
            coding=coding,
        )

    def signature(self) -> tuple:
        """Hashable value identity; equal signatures mean equal owner maps.

        Plans and lookup tables keyed by signature are shared between
        fresh-but-equal embedding instances across solver iterations.
        """
        return (
            "matrix",
            self.R,
            self.C,
            self.row_dims,
            self.col_dims,
            self._row_layout_kind,
            self._col_layout_kind,
            self.coding,
        )

    def code(self, grid_coord):
        """Grid coordinate -> node code under this embedding's coding."""
        return gray(grid_coord) if self.coding == "gray" else grid_coord

    def decode(self, node_code):
        """Node code -> grid coordinate (inverse of :meth:`code`)."""
        return gray_rank(node_code) if self.coding == "gray" else node_code

    def transposed(self) -> "MatrixEmbedding":
        """The embedding of the transposed matrix: axes and layouts swapped."""
        return MatrixEmbedding(
            self.machine,
            self.C,
            self.R,
            row_dims=self.col_dims,
            col_dims=self.row_dims,
            row_layout_kind=self._col_layout_kind,
            col_layout_kind=self._row_layout_kind,
            coding=self.coding,
        )

    # -- shapes -----------------------------------------------------------------

    @property
    def local_shape(self) -> Tuple[int, int]:
        return (self.row_layout.capacity, self.col_layout.capacity)

    @property
    def local_size(self) -> int:
        lr, lc = self.local_shape
        return lr * lc

    @property
    def elements(self) -> int:
        return self.R * self.C

    # -- address maps --------------------------------------------------------------

    def pid_for_grid(self, gr, gc):
        """Cube node of grid cell ``(gr, gc)`` (coded on both axes)."""
        return deposit_bits(self.code(gr), self.row_dims) | deposit_bits(
            self.code(gc), self.col_dims
        )

    def grid_for_pid(self, pid):
        """Grid cell of cube node ``pid``."""
        gr = self.decode(extract_bits(pid, self.row_dims))
        gc = self.decode(extract_bits(pid, self.col_dims))
        return gr, gc

    def grid_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-pid grid coordinates (cached)."""
        return self._grid_r, self._grid_c

    def owner(self, i, j):
        """Cube node owning matrix element ``(i, j)`` (vectorised)."""
        gr = self.row_layout.owner(i)
        gc = self.col_layout.owner(j)
        return self.pid_for_grid(gr, gc)

    def owner_slot(self, i, j):
        """``(pid, slot_r, slot_c)`` of element ``(i, j)`` (vectorised)."""
        return (
            self.owner(i, j),
            self.row_layout.slot(i),
            self.col_layout.slot(j),
        )

    def row_owner_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(grid_row, slot_r)`` of every global row, memoized per signature."""

        def build() -> Tuple[np.ndarray, np.ndarray]:
            rows = np.arange(self.R)
            return (
                readonly(np.asarray(self.row_layout.owner(rows), dtype=np.int64)),
                readonly(np.asarray(self.row_layout.slot(rows), dtype=np.int64)),
            )

        return self.machine.plans.memo(
            ("mat-row-owner", self.signature()), build
        )

    def col_owner_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(grid_col, slot_c)`` of every global column, memoized per signature."""

        def build() -> Tuple[np.ndarray, np.ndarray]:
            cols = np.arange(self.C)
            return (
                readonly(np.asarray(self.col_layout.owner(cols), dtype=np.int64)),
                readonly(np.asarray(self.col_layout.slot(cols), dtype=np.int64)),
            )

        return self.machine.plans.memo(
            ("mat-col-owner", self.signature()), build
        )

    def owner_slot_scalar(self, i: int, j: int) -> Tuple[int, int, int]:
        """``(pid, slot_r, slot_c)`` of one element as Python ints.

        Uses the memoized per-axis owner tables when the plan cache is
        enabled; otherwise falls back to the direct computation.
        """
        if self.machine.plans.enabled:
            gr_tab, sr_tab = self.row_owner_table()
            gc_tab, sc_tab = self.col_owner_table()
            pid = self.pid_for_grid(int(gr_tab[i]), int(gc_tab[j]))
            return int(np.asarray(pid)), int(sr_tab[i]), int(sc_tab[j])
        pid, sr, sc = self.owner_slot(i, j)
        return int(np.asarray(pid)), int(np.asarray(sr)), int(np.asarray(sc))

    # -- masks --------------------------------------------------------------------

    def valid_mask(self) -> np.ndarray:
        """Boolean array ``(p, lr, lc)``: which local slots hold elements.

        Memoized per signature on the machine's plan cache (read-only).
        """

        def build() -> np.ndarray:
            row_masks = self.row_layout.all_valid_masks()  # (Pr, lr)
            col_masks = self.col_layout.all_valid_masks()  # (Pc, lc)
            return readonly(
                row_masks[self._grid_r][:, :, None]
                & col_masks[self._grid_c][:, None, :]
            )

        return self.machine.plans.memo(
            ("mat-valid-mask", self.signature()), build
        )

    def valid_pvar(self) -> PVar:
        """The valid mask as a machine-resident boolean PVar (free: wired)."""
        return PVar(self.machine, self.valid_mask())

    def global_rows(self) -> np.ndarray:
        """Global row index per (pid, slot_r), shape ``(p, lr)``; padding clamped.

        Memoized per signature on the machine's plan cache (read-only).
        """
        return self.machine.plans.memo(
            ("mat-global-rows", self.signature()),
            lambda: readonly(self.row_layout.all_global_indices()[self._grid_r]),
        )

    def global_cols(self) -> np.ndarray:
        """Global column index per (pid, slot_c), shape ``(p, lc)``.

        Memoized per signature on the machine's plan cache (read-only).
        """
        return self.machine.plans.memo(
            ("mat-global-cols", self.signature()),
            lambda: readonly(self.col_layout.all_global_indices()[self._grid_c]),
        )

    # -- host transfer ----------------------------------------------------------------

    def scatter(self, matrix: np.ndarray) -> PVar:
        """Load a host matrix into the machine (front-end I/O; not timed).

        On a batched machine the host image carries the run axis last:
        shape ``(R, C, n_runs)``.
        """
        matrix = np.asarray(matrix)
        n_runs = self.machine.n_runs
        expected = (
            (self.R, self.C) if n_runs is None else (self.R, self.C, n_runs)
        )
        if matrix.shape != expected:
            raise ShapeError(
                f"expected host matrix of shape {expected}, "
                f"got {matrix.shape} for {self.signature()}"
            )
        if self.local_size == 0:
            empty = (self.machine.p, 0, 0) + matrix.shape[2:]
            return PVar(self.machine, np.zeros(empty, matrix.dtype))
        r_idx = self.global_rows()  # (p, lr)
        c_idx = self.global_cols()  # (p, lc)
        data = matrix[r_idx[:, :, None], c_idx[:, None, :]]
        # Padding slots currently replicate edge elements; zero them so
        # stray values can never leak through arithmetic.
        mask = self.valid_mask()
        if data.ndim > mask.ndim:
            mask = mask[..., None]  # broadcast over the run axis
        data = np.where(mask, data, np.zeros((), dtype=matrix.dtype))
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_matrix_embedding(self)
        return PVar(self.machine, data)

    def gather(self, pvar: PVar) -> np.ndarray:
        """Read the matrix back to the host (front-end I/O; not timed)."""
        if pvar.machine is not self.machine:
            raise EmbeddingError(
                f"PVar belongs to a different machine than embedding "
                f"{self.signature()}"
            )
        if pvar.local_shape != self.local_shape:
            raise ShapeError(
                f"PVar local shape {pvar.local_shape} does not match "
                f"embedding local shape {self.local_shape} of "
                f"{self.signature()}"
            )
        extra = pvar.data.shape[3:]  # trailing run axis on a batched machine
        out = np.zeros((self.R, self.C) + extra, dtype=pvar.dtype)
        mask = self.valid_mask()
        r_idx = np.broadcast_to(self.global_rows()[:, :, None], mask.shape)
        c_idx = np.broadcast_to(self.global_cols()[:, None, :], mask.shape)
        out[r_idx[mask], c_idx[mask]] = pvar.data[mask]
        return out

    # -- compatibility ------------------------------------------------------------------

    def same_grid(self, other: "MatrixEmbedding") -> bool:
        """True if both embeddings use the same grid split and layouts."""
        return (
            self.machine is other.machine
            and self.row_dims == other.row_dims
            and self.col_dims == other.col_dims
            and self._row_layout_kind == other._row_layout_kind
            and self._col_layout_kind == other._col_layout_kind
            and self.coding == other.coding
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatrixEmbedding):
            return NotImplemented
        return (
            self.same_grid(other) and self.R == other.R and self.C == other.C
        )

    def __hash__(self) -> int:
        return hash(
            (self.R, self.C, self.row_dims, self.col_dims,
             self._row_layout_kind, self._col_layout_kind, self.coding)
        )

    def __repr__(self) -> str:
        return (
            f"MatrixEmbedding({self.R}x{self.C} on {self.Pr}x{self.Pc} grid, "
            f"row_dims={self.row_dims}, col_dims={self.col_dims}, "
            f"layouts=({self._row_layout_kind}, {self._col_layout_kind}))"
        )
