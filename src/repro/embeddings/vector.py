"""Vector embeddings: the paper's vector, row and column orders.

The paper's primitives move data between *three* vector embeddings:

* **vector order** (:class:`VectorOrderEmbedding`) — the vector is spread
  over all ``p`` processors; rank ``r`` (in Gray-code order, so consecutive
  chunks sit on neighbouring nodes) holds a balanced share of the elements.
  This is the natural layout for vector-only computation: maximal
  parallelism, ``ceil(L/p)`` elements per processor.

* **row order** (:class:`RowAlignedEmbedding`) — a length-``C`` vector laid
  out exactly like one row of an embedded ``R × C`` matrix: grid column
  ``gc`` holds the same column slice as the matrix does.  It is either
  *resident* in one grid row or *replicated* across all grid rows (the
  state produced by a broadcast and consumed by ``distribute``).

* **column order** (:class:`ColAlignedEmbedding`) — symmetric, for
  length-``R`` vectors aligned with the matrix's rows.

"The primitives may indicate a change from one embedding to another"
(abstract): the conversion machinery lives in :mod:`repro.embeddings.remap`.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..errors import EmbeddingError, ShapeError
from ..machine.hypercube import Hypercube
from ..machine.plans import readonly
from ..machine.pvar import PVar
from .gray import deposit_bits, gray, gray_rank
from .layout import Layout, make_layout
from .matrix import MatrixEmbedding


class VectorEmbedding(abc.ABC):
    """A load-balanced embedding of a length-``L`` vector."""

    machine: Hypercube
    L: int

    # -- identity ----------------------------------------------------------

    @abc.abstractmethod
    def signature(self) -> tuple:
        """Hashable value identity of this embedding.

        Two embeddings with equal signatures (on the same machine) induce
        identical owner maps and index images, so communication plans and
        memoized lookup tables keyed by signature are shared across
        instances constructed in different solver iterations.
        """

    # -- shape -------------------------------------------------------------

    @property
    @abc.abstractmethod
    def local_shape(self) -> Tuple[int, ...]:
        """Per-processor block shape."""

    @property
    def local_size(self) -> int:
        size = 1
        for extent in self.local_shape:
            size *= extent
        return size

    @property
    @abc.abstractmethod
    def replicated(self) -> bool:
        """True when every element exists on more than one processor."""

    # -- address maps ----------------------------------------------------------

    @abc.abstractmethod
    def owner_slot(self, g):
        """Primary ``(pid, slot)`` of global index ``g`` (vectorised)."""

    def owner_slot_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(pid, slot)`` of every global index, memoized per signature.

        The full length-``L`` owner map, shared via the machine's plan
        cache so hot loops (remaps, scalar reads) stop re-deriving it.
        """

        def build() -> Tuple[np.ndarray, np.ndarray]:
            pid, slot = self.owner_slot(np.arange(self.L))
            return (
                readonly(np.asarray(pid, dtype=np.int64)),
                readonly(np.asarray(slot, dtype=np.int64)),
            )

        return self.machine.plans.memo(
            ("vec-owner-slot", self.signature()), build
        )

    def owner_slot_scalar(self, g: int) -> Tuple[int, int]:
        """``(pid, slot)`` of one global index as Python ints.

        Uses the memoized owner table when the plan cache is enabled;
        otherwise falls back to the direct per-index computation.
        """
        if self.machine.plans.enabled:
            pids, slots = self.owner_slot_table()
            return int(pids[g]), int(slots[g])
        pid, slot = self.owner_slot(g)
        return int(np.asarray(pid)), int(np.asarray(slot))

    def valid_mask(self) -> np.ndarray:
        """Boolean ``(p, *local_shape)``: slots holding real elements.

        Memoized per signature on the machine's plan cache (read-only).
        """
        return self.machine.plans.memo(
            ("vec-valid-mask", self.signature()),
            lambda: readonly(self._compute_valid_mask()),
        )

    def global_indices(self) -> np.ndarray:
        """Global index per (pid, slot); padding clamped in-range.

        Memoized per signature on the machine's plan cache (read-only).
        """
        return self.machine.plans.memo(
            ("vec-global-indices", self.signature()),
            lambda: readonly(self._compute_global_indices()),
        )

    @abc.abstractmethod
    def _compute_valid_mask(self) -> np.ndarray:
        """Uncached computation behind :meth:`valid_mask`."""

    @abc.abstractmethod
    def _compute_global_indices(self) -> np.ndarray:
        """Uncached computation behind :meth:`global_indices`."""

    # -- host transfer ------------------------------------------------------------

    def scatter(self, vector: np.ndarray) -> PVar:
        """Load a host vector (front-end I/O; not timed).

        On a batched machine the host image carries the run axis last:
        shape ``(L, n_runs)``.
        """
        vector = np.asarray(vector)
        n_runs = self.machine.n_runs
        expected = (self.L,) if n_runs is None else (self.L, n_runs)
        if vector.shape != expected:
            raise ShapeError(
                f"expected host vector of shape {expected}, got "
                f"{vector.shape} for {self.signature()}"
            )
        idx = self.global_indices()
        data = vector[idx]
        mask = self.valid_mask()
        if data.ndim > mask.ndim:
            mask = mask[..., None]  # broadcast over the run axis
        data = np.where(mask, data, np.zeros((), dtype=vector.dtype))
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            sanitizer.audit_vector_embedding(self)
        return PVar(self.machine, data)

    def gather(self, pvar: PVar) -> np.ndarray:
        """Read the vector back to the host (front-end I/O; not timed)."""
        if pvar.machine is not self.machine:
            raise EmbeddingError(
                f"PVar belongs to a different machine than embedding "
                f"{self.signature()}"
            )
        if pvar.local_shape != self.local_shape:
            raise ShapeError(
                f"PVar local shape {pvar.local_shape} != embedding local "
                f"shape {self.local_shape} of {self.signature()}"
            )
        extra = pvar.data.shape[1 + len(self.local_shape):]
        out = np.zeros((self.L,) + extra, dtype=pvar.dtype)
        mask = self.valid_mask()
        idx = self.global_indices()
        out[idx[mask]] = pvar.data[mask]
        return out

    def valid_pvar(self) -> PVar:
        return PVar(self.machine, self.valid_mask())

    # -- distribution order ------------------------------------------------------

    @abc.abstractmethod
    def order_rank(self) -> np.ndarray:
        """Per-pid position of each processor along the vector's order.

        Used by order-sensitive operations (scans): ``order_rank()[pid]``
        is the processor's index among the holders of the vector, in
        increasing-global-index order.  Bitwise compatible with
        :meth:`order_dims` in the sense :func:`repro.comm.scan` requires.
        """

    @property
    @abc.abstractmethod
    def order_dims(self) -> tuple:
        """Cube dimensions spanning the vector's distribution."""

    @property
    @abc.abstractmethod
    def along_layout(self):
        """The 1-D :class:`~.layout.Layout` splitting the vector."""

    # -- compatibility ---------------------------------------------------------------

    @abc.abstractmethod
    def compatible(self, other: "VectorEmbedding") -> bool:
        """True when elementwise ops can run without data motion."""


class VectorOrderEmbedding(VectorEmbedding):
    """Vector spread over the whole cube in Gray-code rank order."""

    def __init__(
        self,
        machine: Hypercube,
        L: int,
        layout: str = "block",
        coding: str = "gray",
    ) -> None:
        if L < 1:
            raise ShapeError(f"vector length must be >= 1, got {L}")
        if coding not in ("gray", "binary"):
            raise EmbeddingError(
                f"coding must be 'gray' or 'binary', got {coding!r}"
            )
        self.machine = machine
        self.L = L
        self.layout: Layout = make_layout(layout, L, machine.p)
        self._layout_kind = layout
        self.coding = coding
        # rank r lives on pid code(r); per-pid rank = decode(pid)
        if coding == "gray":
            self._rank_of_pid = gray_rank(machine.pids())
        else:
            self._rank_of_pid = machine.pids().copy()

    @property
    def local_shape(self) -> Tuple[int, ...]:
        return (self.layout.capacity,)

    @property
    def replicated(self) -> bool:
        return False

    def signature(self) -> tuple:
        return ("vec-order", self.L, self._layout_kind, self.coding)

    def owner_slot(self, g):
        rank = self.layout.owner(g)
        pid = gray(rank) if self.coding == "gray" else rank
        return pid, self.layout.slot(g)

    def _compute_valid_mask(self) -> np.ndarray:
        return self.layout.all_valid_masks()[self._rank_of_pid]

    def _compute_global_indices(self) -> np.ndarray:
        return self.layout.all_global_indices()[self._rank_of_pid]

    def order_rank(self) -> np.ndarray:
        return self._rank_of_pid

    @property
    def order_dims(self) -> tuple:
        return self.machine.dims

    @property
    def along_layout(self):
        return self.layout

    def compatible(self, other: VectorEmbedding) -> bool:
        return (
            isinstance(other, VectorOrderEmbedding)
            and other.machine is self.machine
            and other.L == self.L
            and other._layout_kind == self._layout_kind
            and other.coding == self.coding
        )

    def __repr__(self) -> str:
        return (
            f"VectorOrderEmbedding(L={self.L}, p={self.machine.p}, "
            f"layout={self._layout_kind})"
        )


class _AlignedEmbedding(VectorEmbedding):
    """Common machinery for row- and column-aligned embeddings."""

    #: 'row' or 'col'; set by subclasses.
    axis: str

    def __init__(
        self,
        matrix: MatrixEmbedding,
        resident: Optional[int] = None,
    ) -> None:
        self.matrix = matrix
        self.machine = matrix.machine
        self.resident = resident
        if self.axis == "row":
            self.L = matrix.C
            self._along_layout = matrix.col_layout
            self._along_dims = matrix.col_dims
            self._across_dims = matrix.row_dims
            self._across_extent = matrix.Pr
            self._grid_along = matrix.grid_coords()[1]
            self._grid_across = matrix.grid_coords()[0]
        else:
            self.L = matrix.R
            self._along_layout = matrix.row_layout
            self._along_dims = matrix.row_dims
            self._across_dims = matrix.col_dims
            self._across_extent = matrix.Pc
            self._grid_along = matrix.grid_coords()[0]
            self._grid_across = matrix.grid_coords()[1]
        if resident is not None and not (0 <= resident < self._across_extent):
            raise EmbeddingError(
                f"resident grid index {resident} out of range "
                f"[0, {self._across_extent}) for {type(self).__name__} on "
                f"matrix {matrix.signature()}"
            )
        self._across_codes: dict = {}

    @property
    def local_shape(self) -> Tuple[int, ...]:
        return (self._along_layout.capacity,)

    @property
    def replicated(self) -> bool:
        return self.resident is None

    def signature(self) -> tuple:
        return (self.axis, "aligned", self.resident, self.matrix.signature())

    @property
    def along_dims(self) -> Tuple[int, ...]:
        """Cube dims spanning the vector's own axis."""
        return self._along_dims

    @property
    def across_dims(self) -> Tuple[int, ...]:
        """Cube dims orthogonal to the vector (replication / residence axis)."""
        return self._across_dims

    def owner_slot(self, g):
        along = self._along_layout.owner(g)
        slot = self._along_layout.slot(g)
        across = 0 if self.resident is None else self.resident
        along_bits = deposit_bits(self.matrix.code(along), self._along_dims)
        across_bits = deposit_bits(self.matrix.code(across), self._across_dims)
        return along_bits | across_bits, slot

    def across_code(self, coord: int) -> int:
        """Node code of an orthogonal grid coordinate (coding-aware)."""
        code = self._across_codes.get(coord)
        if code is None:
            code = self._across_codes[coord] = int(np.asarray(self.matrix.code(coord)))
        return code

    def _present_mask(self) -> np.ndarray:
        """(p,) mask of processors that hold the vector at all."""
        if self.resident is None:
            return np.ones(self.machine.p, dtype=bool)
        return self._grid_across == self.resident

    def _compute_valid_mask(self) -> np.ndarray:
        slot_masks = self._along_layout.all_valid_masks()[self._grid_along]
        return slot_masks & self._present_mask()[:, None]

    def order_rank(self) -> np.ndarray:
        return self._grid_along

    @property
    def order_dims(self) -> tuple:
        return self._along_dims

    @property
    def along_layout(self):
        return self._along_layout

    def _compute_global_indices(self) -> np.ndarray:
        return self._along_layout.all_global_indices()[self._grid_along]

    def compatible(self, other: VectorEmbedding) -> bool:
        return (
            type(other) is type(self)
            and other.machine is self.machine
            and other.L == self.L
            and other.matrix.same_grid(self.matrix)  # type: ignore[attr-defined]
            and other.resident == self.resident  # type: ignore[attr-defined]
        )

    def with_resident(self, resident: Optional[int]) -> "_AlignedEmbedding":
        """The same alignment with a different residence/replication state."""
        return type(self)(self.matrix, resident)

    def __repr__(self) -> str:
        state = "replicated" if self.resident is None else f"resident@{self.resident}"
        return (
            f"{type(self).__name__}(L={self.L}, grid="
            f"{self.matrix.Pr}x{self.matrix.Pc}, {state})"
        )


class RowAlignedEmbedding(_AlignedEmbedding):
    """Length-``C`` vector laid out like one matrix row ("row order")."""

    axis = "row"


class ColAlignedEmbedding(_AlignedEmbedding):
    """Length-``R`` vector laid out like one matrix column ("column order")."""

    axis = "col"
