"""Paper-style table and series formatting for the benchmark harness.

Each benchmark regenerates one of the reconstructed tables/figures
(DESIGN.md: R-T1 … R-F4) and prints it through these helpers so the output
reads like the paper's evaluation section: a caption, aligned columns, and
a short legend of the cost-model units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence
from ..errors import ConfigError, ShapeError


def _fmt(value: Any, width: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            text = "-"
        elif abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            text = f"{value:.3e}"
        else:
            text = f"{value:,.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    caption: Optional[str] = None,
) -> str:
    """A fixed-width table with a rule under the header."""
    if any(len(row) != len(headers) for row in rows):
        raise ShapeError("every row must match the header arity")
    str_rows = [
        [
            _fmt(cell, 0).strip() if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if caption:
        lines.append(caption)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One named (x, y) series of a reconstructed figure."""

    name: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))


def format_series(
    series: Sequence[Series],
    x_label: str,
    caption: Optional[str] = None,
) -> str:
    """Print several series as a merged table keyed by x.

    All series must share their x grid (the benchmark sweeps guarantee it).
    """
    if not series:
        raise ConfigError("need at least one series")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ShapeError(f"series {s.name!r} has a different x grid")
    headers = [x_label] + [s.name for s in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [s.ys[i] for s in series])
    return format_table(headers, rows, caption=caption)


def format_speedup(
    xs: Sequence[float],
    baseline: Sequence[float],
    improved: Sequence[float],
    x_label: str,
    caption: Optional[str] = None,
) -> str:
    """baseline vs improved times plus their ratio (the paper's speedups)."""
    if not (len(xs) == len(baseline) == len(improved)):
        raise ShapeError("series lengths must match")
    rows = [
        [x, b, i, b / i if i else float("nan")]
        for x, b, i in zip(xs, baseline, improved)
    ]
    return format_table(
        [x_label, "naive time", "primitive time", "speedup"],
        rows,
        caption=caption,
    )
