"""Closed-form cost models for the primitives.

The paper derives the primitives' complexity analytically; the simulator
charges cost operation by operation.  This module states the closed forms
and the test suite verifies that the simulator's charges match them
*exactly* — the reproduction's analogue of the paper's "timing model
verified by experiment" methodology.

Notation: the matrix is ``R × C`` on a ``Pr × Pc`` grid with local block
``lr × lc`` (``lr = ceil(R/Pr)`` etc.), ``nr = lg Pr``, ``nc = lg Pc``.
One exchange round of ``v`` elements costs ``tau + v·t_c``; an elementwise
pass over ``v`` elements costs ``v·t_a`` (arithmetic) or ``v·t_m``
(local move).

=============================  ===================================================
primitive                      model (axis=1 row variants; axis=0 symmetric)
=============================  ===================================================
``reduce``                     [pad: lr·lc·t_m] + (lr·lc − lr)·t_a
                               + nc·(tau + lr·t_c + lr·t_a)
``reduce_loc``                 [valid: lr·lc·t_a] + lr·lc·t_m + 2·lr·lc·t_a
                               + nc·(2·(tau + lr·t_c) + 3·lr·t_a)
``extract`` (replicated)       l·t_m + k·(tau + l·t_c)        (k = orthogonal dims)
``insert`` (aligned vector)    l·t_m [+ remap if misaligned]
``distribute`` (replicated)    lr·lc·t_m
``distribute`` (resident)      k·(tau + l·t_c) + lr·lc·t_m
``rank1_update``               3·lr·lc·t_a
=============================  ===================================================

The key structural fact — the paper's optimality argument — is visible in
every row: local terms scale with ``m/p = lr·lc`` while communication
terms scale with ``lg p`` rounds of one *vector* share, so for
``m > p lg p`` the local term dominates and processor-time product is
``O(m)``, matching the serial algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.cost_model import CostModel
from ..embeddings.matrix import MatrixEmbedding


@dataclass(frozen=True)
class PrimitiveCosts:
    """Geometry + rates for one embedding, with per-primitive predictors."""

    R: int
    C: int
    Pr: int
    Pc: int
    lr: int
    lc: int
    nr: int
    nc: int
    cost: CostModel

    @classmethod
    def for_embedding(cls, emb: MatrixEmbedding) -> "PrimitiveCosts":
        lr, lc = emb.local_shape
        return cls(
            R=emb.R,
            C=emb.C,
            Pr=emb.Pr,
            Pc=emb.Pc,
            lr=lr,
            lc=lc,
            nr=len(emb.row_dims),
            nc=len(emb.col_dims),
            cost=emb.machine.cost_model,
        )

    # -- geometry helpers ----------------------------------------------------

    @property
    def local_elements(self) -> int:
        return self.lr * self.lc

    def _axis_geom(self, axis: int):
        """(share length l, orthogonal dim count k) for an axis-``axis`` slice."""
        if axis == 0:
            return self.lc, self.nr  # a row slice: length C, across grid rows
        return self.lr, self.nc      # a column slice: length R, across grid cols

    def has_padding(self, axis_both: bool = True) -> bool:
        """Whether any local slot is padding (triggers the masking pass)."""
        return self.lr * self.Pr != self.R or self.lc * self.Pc != self.C

    # -- predictors (mirror the implementation exactly) ------------------------

    def reduce(self, axis: int) -> float:
        """reduce along ``axis`` (axis=1: row totals)."""
        c = self.cost
        le = self.local_elements
        l, k = (self.lr, self.nc) if axis == 1 else (self.lc, self.nr)
        t = 0.0
        if self.has_padding():
            t += c.memory(le)  # identity-masking pass
        t += c.arithmetic(le - l)  # local tree reduce
        t += k * (c.comm_round(l) + c.arithmetic(l))  # subcube all-reduce
        return t

    def reduce_loc(self, axis: int, with_valid: bool = False) -> float:
        c = self.cost
        le = self.local_elements
        l, k = (self.lr, self.nc) if axis == 1 else (self.lc, self.nr)
        t = 0.0
        if with_valid:
            t += c.arithmetic(le)      # fold the caller's mask in
        t += c.memory(le)              # identity masking
        t += c.arithmetic(le)          # local arg scan
        t += c.arithmetic(le)          # tie-break re-scan
        t += k * (2 * c.comm_round(l) + c.arithmetic(3 * l))
        return t

    def extract(self, axis: int, replicate: bool = True) -> float:
        c = self.cost
        l, k = self._axis_geom(axis)
        t = c.memory(l)  # slice copy in the owning band
        if replicate:
            t += k * c.comm_round(l)  # binomial broadcast rounds
        return t

    def insert_aligned(self, axis: int) -> float:
        """insert of an already-aligned (resident-or-replicated) vector."""
        l, _ = self._axis_geom(axis)
        return self.cost.memory(l)

    def distribute(self, axis: int, resident: bool = False) -> float:
        c = self.cost
        l, k = self._axis_geom(axis)
        t = c.memory(self.local_elements)  # the local tile
        if resident:
            t += k * c.comm_round(l)  # replicate across the orthogonal subcube
        return t

    def rank1_update(self) -> float:
        return self.cost.arithmetic(3 * self.local_elements)

    # -- naive counterparts (serialised band communication) ---------------------

    def naive_reduce(self, axis: int) -> float:
        c = self.cost
        le = self.local_elements
        l, k = (self.lr, self.nc) if axis == 1 else (self.lc, self.nr)
        bands = (1 << k) - 1
        t = 0.0
        if self.has_padding():
            t += c.memory(le)
        t += c.arithmetic(le - l)
        t += bands * c.comm_round(l)      # serial gather to the leader band
        t += c.arithmetic(l * bands)      # serial combining at the leader
        t += bands * c.comm_round(l)      # serial send-back (replication)
        return t

    def naive_extract(self, axis: int, replicate: bool = True) -> float:
        c = self.cost
        l, k = self._axis_geom(axis)
        t = c.memory(l)
        if replicate:
            t += ((1 << k) - 1) * c.comm_round(l)
        return t

    # -- whole applications (aligned fast paths) ------------------------------------

    def matvec(self) -> float:
        """A @ x with x already row-aligned replicated: distribute + multiply
        + reduce."""
        return (
            self.distribute(axis=0)
            + self.cost.arithmetic(self.local_elements)
            + self.reduce(axis=1)
        )

    def gaussian_step(self) -> float:
        """One forward-elimination step (no row swap): pivot search +
        pivot row/column extracts + masked multiplier arithmetic + rank-1
        update + column cleanup.  An upper-bound style estimate — the
        simulator remains the ground truth; used for curve shapes."""
        c = self.cost
        t = self.extract(axis=1) + self.reduce_loc_vector(self.lr, self.nr)
        t += self.extract(axis=0)               # pivot row
        t += c.comm_round(1)                    # host reads pivot value
        t += self.extract(axis=1)               # multiplier column
        t += c.arithmetic(3 * self.lr)          # mask + divide + select
        t += self.rank1_update()
        t += self.extract(axis=1) + c.arithmetic(self.lr) + self.insert_aligned(1)
        return t

    def reduce_loc_vector(self, l: int, k: int) -> float:
        """arg-reduce of an aligned vector of local share ``l`` over its
        ``2**k``-member subcube (the vector-level pivot search)."""
        c = self.cost
        return (
            c.arithmetic(l)  # valid-mask fold
            + c.memory(l)
            + 2 * c.arithmetic(l)
            + k * (2 * c.comm_round(1) + c.arithmetic(3))
            + c.comm_round(1)  # host read
        )

    # -- extension operations ----------------------------------------------------

    def scan(self, axis: int) -> float:
        """matrix scan along ``axis``: local prefix + ordered subcube scan
        of the block totals + local offset fold (mirrors the implementation
        exactly, like every predictor here)."""
        c = self.cost
        le = self.local_elements
        l, k = (self.lr, self.nc) if axis == 1 else (self.lc, self.nr)
        t = 0.0
        if self.has_padding():
            t += c.memory(le)          # identity-masking pass
        t += c.arithmetic(le)          # local inclusive prefix
        # subcube scan of totals: init copy + k rounds (exchange + 2 flops)
        t += c.memory(2 * l)
        t += k * (c.comm_round(l) + c.arithmetic(2 * l))
        t += c.memory(le)              # exclusive shift
        t += c.arithmetic(le)          # fold the carry in
        return t

    def alltoall(self, dims_count: int, block: int) -> float:
        """total exchange of ``2**k`` blocks of ``block`` elements each."""
        c = self.cost
        k = dims_count
        if k == 0:
            return 0.0
        nblocks = 1 << k
        t = c.memory(nblocks * block)                    # XOR re-index in
        t += k * (
            c.comm_round((nblocks // 2) * block)          # half the buffer
            + c.memory((nblocks // 2) * block)            # merge received
        )
        t += c.memory(nblocks * block)                    # re-index out
        return t

    def broadcast_pipelined(self, dims_count: int, volume: int) -> float:
        """pipelined broadcast of ``volume`` elements over ``2**k`` nodes."""
        k = dims_count
        if k <= 1:
            return k * self.cost.comm_round(volume)
        piece = -(-volume // k)
        return (2 * k - 1) * self.cost.comm_round(piece)

    def reduce_all_pipelined(self, dims_count: int, volume: int) -> float:
        """reduce-scatter + all-gather all-reduce of ``volume`` elements."""
        c = self.cost
        k = dims_count
        if k <= 1:
            return k * (c.comm_round(volume) + c.arithmetic(volume))
        t = 0.0
        vol = volume
        for _ in range(k):
            vol = -(-vol // 2)
            t += c.comm_round(vol) + c.arithmetic(vol)
        vol = -(-volume // (1 << k))
        for _ in range(k):
            t += c.comm_round(vol)
            vol = min(vol * 2, volume)
        return t
