"""The processor-time-product optimality audit.

The abstract's headline claim: "if there are ``m > p lg p`` matrix
elements, where ``p`` is the number of processors, then the
implementations of some of the primitives are asymptotically optimal in
that the processor-time product is no more than a constant factor higher
than the running time of the best serial algorithm.  Furthermore, the
parallel time required is optimal to within a constant factor."

This module turns that claim into checkable numbers:

* :func:`pt_ratio` — (p × parallel time) / serial time for one run;
* :func:`parallel_time_lower_bound` — the trivial lower bounds
  ``max(serial/p, lg p · tau)`` the "parallel time optimal" half is
  measured against;
* :class:`OptimalityAudit` — a sweep record with the pass/fail predicate
  used by tests and by ``benchmarks/bench_optimality.py`` (R-F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import math

from ..machine.cost_model import CostModel
from ..machine.counters import CostSnapshot
from ..errors import ConfigError, ShapeError


def serial_time(ops: float, cost: CostModel) -> float:
    """Serial running time of ``ops`` arithmetic operations."""
    return cost.arithmetic(ops)


def pt_ratio(parallel: CostSnapshot, p: int, serial_ops: float, cost: CostModel) -> float:
    """Processor-time product over best-serial time (≥ ~1 by definition)."""
    st = serial_time(serial_ops, cost)
    if st <= 0:
        raise ConfigError("serial op count must be positive")
    return (p * parallel.time) / st


def parallel_time_lower_bound(
    serial_ops: float, p: int, cost: CostModel, rounds: int = 1
) -> float:
    """``max(serial/p, rounds·tau)``: work bound and latency bound."""
    return max(serial_time(serial_ops, cost) / p, rounds * cost.tau)


def time_ratio(
    parallel: CostSnapshot,
    serial_ops: float,
    p: int,
    cost: CostModel,
    rounds: int = 1,
) -> float:
    """Parallel time over its lower bound (the 'time optimal' half)."""
    return parallel.time / parallel_time_lower_bound(serial_ops, p, cost, rounds)


@dataclass
class AuditPoint:
    """One (m, p) sample in an optimality sweep."""

    m: int
    p: int
    parallel_time: float
    serial_ops: float
    pt_over_serial: float

    @property
    def elements_per_processor(self) -> float:
        return self.m / self.p

    @property
    def above_threshold(self) -> bool:
        """Whether this point satisfies the paper's ``m > p lg p``."""
        return self.m > self.p * max(math.log2(self.p), 1.0)


@dataclass
class OptimalityAudit:
    """A sweep of audit points with the constant-factor check."""

    points: List[AuditPoint]

    @classmethod
    def from_runs(
        cls,
        ms: Sequence[int],
        p: int,
        times: Sequence[float],
        serial_ops: Sequence[float],
        cost: CostModel,
    ) -> "OptimalityAudit":
        if not (len(ms) == len(times) == len(serial_ops)):
            raise ShapeError("ms, times and serial_ops must align")
        pts = []
        for m, t, ops in zip(ms, times, serial_ops):
            snap = CostSnapshot(time=t)
            pts.append(
                AuditPoint(
                    m=m,
                    p=p,
                    parallel_time=t,
                    serial_ops=ops,
                    pt_over_serial=pt_ratio(snap, p, ops, cost),
                )
            )
        return cls(pts)

    def constant_factor_beyond_threshold(self) -> float:
        """The worst PT/serial ratio among points with ``m > p lg p``.

        The paper's claim holds when this stays bounded (and roughly flat)
        as ``m/p`` grows; tests assert it against the small-``m`` points,
        where the ratio must blow up like ``p lg p / m``.
        """
        above = [pt.pt_over_serial for pt in self.points if pt.above_threshold]
        if not above:
            raise ConfigError("no sweep points beyond the m > p lg p threshold")
        return max(above)

    def ratio_series(self) -> List[tuple]:
        """(m/p, PT/serial) pairs for plotting/printing (R-F1)."""
        return [
            (pt.elements_per_processor, pt.pt_over_serial) for pt in self.points
        ]


def find_crossover(
    ratio_of: "callable",
    lo: int,
    hi: int,
    threshold: float,
) -> int:
    """Smallest ``m`` in ``[lo, hi]`` with ``ratio_of(m) <= threshold``.

    ``ratio_of`` must be non-increasing in ``m`` (true of every PT/serial
    curve here: the latency term amortises as ``m`` grows).  Bisection with
    ``O(lg(hi - lo))`` evaluations; raises if the threshold is never met.
    Used to locate where a primitive's processor-time product enters its
    constant-factor regime — the empirical analogue of ``m > p lg p``.
    """
    if lo > hi:
        raise ConfigError("empty search range")
    if ratio_of(hi) > threshold:
        raise ConfigError(
            f"ratio never reaches {threshold} on [{lo}, {hi}] "
            f"(ratio({hi}) = {ratio_of(hi):.3g})"
        )
    if ratio_of(lo) <= threshold:
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ratio_of(mid) <= threshold:
            hi = mid
        else:
            lo = mid
    return hi
