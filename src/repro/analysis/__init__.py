"""Analytic cost models, the optimality audit, and report formatting."""

from .models import PrimitiveCosts
from .optimality import (
    AuditPoint,
    find_crossover,
    OptimalityAudit,
    parallel_time_lower_bound,
    pt_ratio,
    serial_time,
    time_ratio,
)
from .reporting import Series, format_series, format_speedup, format_table

__all__ = [
    "PrimitiveCosts",
    "AuditPoint",
    "find_crossover",
    "OptimalityAudit",
    "parallel_time_lower_bound",
    "pt_ratio",
    "serial_time",
    "time_ratio",
    "Series",
    "format_series",
    "format_speedup",
    "format_table",
]
